"""Tests for the 2P baseline (two-phase optimization)."""

import random

import pytest

from repro.baselines.two_phase import TwoPhaseOptimizer
from repro.pareto.dominance import strictly_dominates
from repro.plans.validation import validate_plan


@pytest.fixture
def optimizer(chain_model):
    return TwoPhaseOptimizer(chain_model, rng=random.Random(4), improvement_iterations=3)


class TestTwoPhase:
    def test_invalid_configuration_rejected(self, chain_model):
        with pytest.raises(ValueError):
            TwoPhaseOptimizer(chain_model, improvement_iterations=0)

    def test_phase_switch_after_configured_iterations(self, optimizer):
        assert not optimizer.in_second_phase
        for _ in range(3):
            optimizer.step()
        assert not optimizer.in_second_phase
        optimizer.step()
        assert optimizer.in_second_phase

    def test_frontier_contains_valid_plans(self, optimizer, chain_query_4, chain_model):
        optimizer.run(max_steps=6)
        frontier = optimizer.frontier()
        assert frontier
        for plan in frontier:
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_archive_is_non_dominated(self, optimizer):
        optimizer.run(max_steps=8)
        frontier = optimizer.frontier()
        for first in frontier:
            for second in frontier:
                if first is second:
                    continue
                assert not strictly_dominates(first.cost, second.cost)

    def test_archive_preserved_across_phase_switch(self, chain_model):
        optimizer = TwoPhaseOptimizer(
            chain_model, rng=random.Random(3), improvement_iterations=2
        )
        optimizer.run(max_steps=2)
        best_phase_one = min(plan.cost[0] for plan in optimizer.frontier())
        optimizer.run(max_steps=6)
        best_after = min(plan.cost[0] for plan in optimizer.frontier())
        assert best_after <= best_phase_one

    def test_statistics_track_both_phases(self, optimizer):
        optimizer.run(max_steps=6)
        assert optimizer.statistics.steps == 6
        assert optimizer.statistics.plans_built > 0

    def test_default_improvement_iterations_match_paper(self, chain_model):
        optimizer = TwoPhaseOptimizer(chain_model, rng=random.Random(1))
        assert optimizer._improvement_iterations == 10
