"""Tests for the distributed coordinator subsystem (repro.dist).

The headline property: on step-driven specs, ``backend="coordinator"``
produces output bit-identical to sequential ``run_scenario`` with 1, 2,
and 4 workers — through worker death, corrupted completions, duplicate
completions, and warm-cache runs that execute zero DP-reference leaves.
"""

import dataclasses
import json
import os
import threading

import pytest

import repro.bench.tasks as tasks_module
from repro.bench.runner import ScenarioResult, reduce_task_results, run_scenario
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.tasks import (
    ROLE_REFERENCE,
    clear_reference_memo,
    reference_memo_size,
    schedule_tasks,
    task_is_deterministic,
    task_provenance_hash,
)
from repro.dist import TaskCache, Worker, run_coordinated
from repro.dist.coordinator import Coordinator, LeaseValidationError
from repro.dist.protocol import (
    collect_results,
    init_workdir,
    load_workdir,
    run_worker,
)
from repro.query.join_graph import GraphShape


@pytest.fixture(scope="module")
def step_spec():
    """Step-driven smoke spec with DP-reference leaves (all deterministic)."""
    return ScenarioSpec(
        name="dist-smoke",
        description="coordinator determinism smoke spec",
        graph_shapes=(GraphShape.CHAIN, GraphShape.STAR),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RandomSampling", "RMQ"),
        num_test_cases=2,
        step_checkpoints=(2, 4),
        reference_algorithm="DP(1.01)",
        seed=11,
        scale=ScenarioScale.SMOKE,
    )


@pytest.fixture(scope="module")
def sequential_result(step_spec):
    return run_scenario(step_spec, workers=1)


class FakeClock:
    """Settable monotonic clock for lease-expiry tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Provenance hashes and the determinism gate
# ---------------------------------------------------------------------------
class TestProvenanceHash:
    def test_hash_is_stable_and_distinct_per_task(self, step_spec):
        tasks = schedule_tasks(step_spec)
        hashes = [task_provenance_hash(step_spec, task) for task in tasks]
        assert hashes == [task_provenance_hash(step_spec, task) for task in tasks]
        assert len(set(hashes)) == len(hashes)

    def test_reference_hash_ignores_variant_only_fields(self, step_spec):
        # A figure variant with different algorithms / step checkpoints /
        # name shares its reference leaves — their hashes must not move.
        variant = dataclasses.replace(
            step_spec,
            name="dist-smoke-variant",
            algorithms=("RandomSampling",),
            step_checkpoints=(3, 6),
        )
        for task in schedule_tasks(step_spec):
            if task.role == ROLE_REFERENCE:
                assert task_provenance_hash(step_spec, task) == task_provenance_hash(
                    variant, task
                )

    def test_algorithm_hash_tracks_execution_fields(self, step_spec):
        task = next(
            task
            for task in schedule_tasks(step_spec)
            if task.role != ROLE_REFERENCE
        )
        changed = dataclasses.replace(step_spec, step_checkpoints=(3, 6))
        assert task_provenance_hash(step_spec, task) != task_provenance_hash(
            changed, task
        )
        reseeded = dataclasses.replace(step_spec, seed=step_spec.seed + 1)
        assert task_provenance_hash(step_spec, task) != task_provenance_hash(
            reseeded, task
        )

    def test_determinism_gate(self, step_spec):
        tasks = schedule_tasks(step_spec)
        assert all(task_is_deterministic(step_spec, task) for task in tasks)
        wall_clock = dataclasses.replace(
            step_spec, step_checkpoints=None, reference_time_budget=0.5
        )
        assert not any(task_is_deterministic(wall_clock, task) for task in tasks)


# ---------------------------------------------------------------------------
# TaskCache
# ---------------------------------------------------------------------------
class TestTaskCache:
    def test_miss_then_hit_round_trip(self, step_spec, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        task = schedule_tasks(step_spec)[0]
        assert cache.get(step_spec, task) is None
        result = tasks_module.execute_task(step_spec, task)
        cache.put(step_spec, result)
        assert cache.get(step_spec, task) == result
        assert cache.stats == {"hits": 1, "misses": 1, "stores": 1, "evictions": 0}
        assert len(cache) == 1

    def test_non_deterministic_results_refused(self, step_spec, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        wall_clock = dataclasses.replace(
            step_spec,
            step_checkpoints=None,
            time_budget=0.05,
            checkpoints=(0.05,),
            reference_algorithm=None,
        )
        task = schedule_tasks(wall_clock)[0]
        result = tasks_module.execute_task(wall_clock, task)
        with pytest.raises(ValueError, match="non-deterministic"):
            cache.put(wall_clock, result)
        assert cache.get(wall_clock, task) is None

    def test_corrupted_entry_is_a_miss(self, step_spec, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        task = schedule_tasks(step_spec)[0]
        key = cache.put(step_spec, tasks_module.execute_task(step_spec, task))
        entry = tmp_path / "cache" / key[:2] / f"{key}.json"
        entry.write_text("{not json")
        assert cache.get(step_spec, task) is None

    def test_cross_variant_reference_reuse(self, step_spec, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        reference = next(
            task
            for task in schedule_tasks(step_spec)
            if task.role == ROLE_REFERENCE
        )
        cache.put(step_spec, tasks_module.execute_task(step_spec, reference))
        variant = dataclasses.replace(
            step_spec, name="variant", algorithms=("RandomSampling",)
        )
        assert cache.get(variant, reference) is not None


class TestTaskCacheEviction:
    def _fill(self, cache, spec, count):
        """Store the first ``count`` leaf results; returns the tasks."""
        tasks = schedule_tasks(spec)[:count]
        for task in tasks:
            cache.put(spec, tasks_module.execute_task(spec, task))
        return tasks

    def _entry_size(self, spec, tmp_path):
        probe = TaskCache(os.fspath(tmp_path / "probe"))
        task = schedule_tasks(spec)[0]
        key = probe.put(spec, tasks_module.execute_task(spec, task))
        return os.path.getsize(probe._entry_path(key))

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            TaskCache(os.fspath(tmp_path / "cache"), max_bytes=0)

    def test_cap_enforced_after_puts(self, step_spec, tmp_path):
        entry_size = self._entry_size(step_spec, tmp_path)
        cap = int(entry_size * 2.5)  # room for two entries
        cache = TaskCache(os.fspath(tmp_path / "cache"), max_bytes=cap)
        self._fill(cache, step_spec, 5)
        assert cache.total_bytes() <= cap
        assert len(cache) < 5
        assert cache.stats["evictions"] >= 1

    def test_append_only_without_cap(self, step_spec, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        self._fill(cache, step_spec, 5)
        assert len(cache) == 5
        assert cache.stats["evictions"] == 0

    def test_least_recently_used_entry_evicted_first(self, step_spec, tmp_path):
        entry_size = self._entry_size(step_spec, tmp_path)
        cap = int(entry_size * 2.5)
        cache = TaskCache(os.fspath(tmp_path / "cache"), max_bytes=cap)
        tasks = schedule_tasks(step_spec)[:3]
        first, second, third = tasks
        now = 1_000_000_000.0
        for offset, task in enumerate((first, second)):
            key = cache.put(step_spec, tasks_module.execute_task(step_spec, task))
            os.utime(cache._entry_path(key), (now + offset, now + offset))
        # Touch the older entry through a hit: it becomes the most recent...
        hit_key = cache.put(step_spec, tasks_module.execute_task(step_spec, first))
        assert cache.get(step_spec, first) is not None
        os.utime(cache._entry_path(hit_key), (now + 5, now + 5))
        # ...so the third put evicts ``second``, not ``first``.
        cache.put(step_spec, tasks_module.execute_task(step_spec, third))
        assert cache.get(step_spec, first) is not None
        assert cache.get(step_spec, third) is not None
        assert cache.get(step_spec, second) is None

    def test_warm_hit_after_eviction_recomputes_and_restores(
        self, step_spec, tmp_path
    ):
        entry_size = self._entry_size(step_spec, tmp_path)
        cache = TaskCache(
            os.fspath(tmp_path / "cache"), max_bytes=int(entry_size * 1.5)
        )
        tasks = self._fill(cache, step_spec, 2)  # the second put evicts the first
        evicted = tasks[0]
        assert cache.get(step_spec, evicted) is None  # ordinary miss
        result = tasks_module.execute_task(step_spec, evicted)
        cache.put(step_spec, result)  # recomputed and restored...
        assert cache.get(step_spec, evicted) == result  # ...warm again
        assert cache.total_bytes() <= int(entry_size * 1.5)

    def test_capped_run_scenario_still_bit_identical(
        self, step_spec, sequential_result, tmp_path
    ):
        entry_size = self._entry_size(step_spec, tmp_path)
        cache = TaskCache(
            os.fspath(tmp_path / "cache"), max_bytes=int(entry_size * 1.5)
        )
        result = run_scenario(step_spec, workers=1, cache=cache)
        assert result.cells == sequential_result.cells
        assert cache.total_bytes() <= int(entry_size * 1.5)


# ---------------------------------------------------------------------------
# Coordinator lease lifecycle (fake clock, no threads)
# ---------------------------------------------------------------------------
class TestCoordinatorLifecycle:
    def _coordinator(self, spec, **kwargs):
        kwargs.setdefault("clock", FakeClock())
        kwargs.setdefault("lease_timeout", 10.0)
        return Coordinator(spec, **kwargs)

    def _drain(self, coordinator, worker_id="w0"):
        while True:
            lease = coordinator.request_lease(worker_id)
            if lease is None:
                break
            results = [
                tasks_module.execute_task(coordinator.spec, task)
                for task in lease.tasks
            ]
            coordinator.complete_lease(lease.lease_id, results)

    def test_drain_produces_sequential_results(self, step_spec, sequential_result):
        coordinator = self._coordinator(step_spec)
        self._drain(coordinator)
        assert coordinator.done
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells

    def test_results_before_done_rejected(self, step_spec):
        coordinator = self._coordinator(step_spec)
        with pytest.raises(RuntimeError, match="not done"):
            coordinator.results()

    def test_expired_lease_is_reassigned(self, step_spec, sequential_result):
        clock = FakeClock()
        coordinator = self._coordinator(step_spec, clock=clock, lease_timeout=5.0)
        dead = coordinator.request_lease("dead-worker")  # never completed
        assert dead is not None
        clock.advance(6.0)  # past the lease deadline
        self._drain(coordinator, "survivor")
        assert coordinator.done
        assert coordinator.stats["reassignments"] >= 1
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells

    def test_late_completion_of_reclaimed_lease_accepted(self, step_spec):
        clock = FakeClock()
        coordinator = self._coordinator(step_spec, clock=clock, lease_timeout=5.0)
        slow = coordinator.request_lease("slow-worker")
        clock.advance(6.0)
        # The reclaim happens on the next request; the slow worker then
        # delivers anyway — pure leaves, so the result is accepted.
        next_lease = coordinator.request_lease("other")
        assert next_lease is not None
        results = [
            tasks_module.execute_task(step_spec, task) for task in slow.tasks
        ]
        assert coordinator.complete_lease(slow.lease_id, results) is True
        assert coordinator.stats["late_completions"] == 1
        self._drain(coordinator, "other")
        assert coordinator.done

    def test_duplicate_completion_ignored(self, step_spec, sequential_result):
        coordinator = self._coordinator(step_spec)
        lease = coordinator.request_lease("w0")
        results = [
            tasks_module.execute_task(step_spec, task) for task in lease.tasks
        ]
        assert coordinator.complete_lease(lease.lease_id, results) is True
        assert coordinator.complete_lease(lease.lease_id, results) is False
        assert coordinator.stats["duplicates"] == 1
        self._drain(coordinator)
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells

    def test_corrupt_completion_rejected_and_requeued(
        self, step_spec, sequential_result
    ):
        coordinator = self._coordinator(step_spec)
        lease = coordinator.request_lease("bad-worker")
        partial = [
            tasks_module.execute_task(step_spec, task)
            for task in lease.tasks[:-1]  # drop one task: partial shard
        ]
        with pytest.raises(LeaseValidationError, match="do not cover"):
            coordinator.complete_lease(lease.lease_id, partial)
        assert coordinator.stats["rejected"] == 1
        # The group is immediately leaseable again and the run completes.
        self._drain(coordinator, "good-worker")
        assert coordinator.done
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells

    def test_wrong_task_completion_rejected(self, step_spec):
        coordinator = self._coordinator(step_spec, granularity="case")
        lease_a = coordinator.request_lease("w0")
        lease_b = coordinator.request_lease("w0")
        swapped = [
            tasks_module.execute_task(step_spec, task) for task in lease_b.tasks
        ]
        with pytest.raises(LeaseValidationError):
            coordinator.complete_lease(lease_a.lease_id, swapped)

    def test_unknown_lease_rejected(self, step_spec):
        coordinator = self._coordinator(step_spec)
        with pytest.raises(LeaseValidationError, match="unknown lease"):
            coordinator.complete_lease("L999.1", [])

    def test_fail_lease_requeues_immediately(self, step_spec):
        coordinator = self._coordinator(step_spec)
        before = coordinator.pending_count
        lease = coordinator.request_lease("w0")
        assert coordinator.pending_count == before - 1
        coordinator.fail_lease(lease.lease_id)
        assert coordinator.pending_count == before
        stats = coordinator.stats
        assert stats["failed_leases"] == 1
        assert stats["reassignments"] == 1

    def test_adaptive_lease_sizing(self, step_spec):
        sequential = Coordinator(step_spec, workers_hint=1)
        assert sequential.granularity == "cell"
        parallel = Coordinator(step_spec, workers_hint=4)
        assert parallel.granularity == "case"


# ---------------------------------------------------------------------------
# Straggler splitting (work stealing at the tail of a run)
# ---------------------------------------------------------------------------
class TestStragglerSplitting:
    def _cell_coordinator(self, spec, **kwargs):
        kwargs.setdefault("clock", FakeClock())
        kwargs.setdefault("lease_timeout", 1000.0)  # expiry never helps here
        kwargs.setdefault("granularity", "cell")
        return Coordinator(spec, **kwargs)

    def test_idle_request_splits_straggler_cell(self, step_spec, sequential_result):
        coordinator = self._cell_coordinator(step_spec)
        # A straggler claims the first cell and stalls; a second worker
        # drains the rest of the queue.
        straggler = coordinator.request_lease("straggler")
        assert straggler is not None and len(straggler.tasks) > 1
        self._drain_queue(coordinator, "helper")
        assert not coordinator.done  # the straggler's cell is missing
        # The helper asks again: the straggler's cell is split into
        # single-task leases it can execute immediately.
        stolen = coordinator.request_lease("helper")
        assert stolen is not None
        assert len(stolen.tasks) == 1
        assert stolen.tasks[0] in straggler.tasks
        assert coordinator.stats["splits"] == 1
        results = [tasks_module.execute_task(step_spec, task) for task in stolen.tasks]
        assert coordinator.complete_lease(stolen.lease_id, results) is True
        self._drain(coordinator, "helper")
        assert coordinator.done
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells

    def test_late_straggler_completion_reconciled_per_task(
        self, step_spec, sequential_result
    ):
        coordinator = self._cell_coordinator(step_spec)
        straggler = coordinator.request_lease("straggler")
        self._drain_queue(coordinator, "helper")
        # Steal exactly one task of the straggler's cell...
        stolen = coordinator.request_lease("helper")
        results = [tasks_module.execute_task(step_spec, task) for task in stolen.tasks]
        assert coordinator.complete_lease(stolen.lease_id, results) is True
        # ...then the straggler delivers its whole cell after all: only the
        # not-yet-completed tasks are recorded, the stolen twin queue
        # entries are cancelled, and the run finishes without re-executing
        # anything.
        late = [
            tasks_module.execute_task(step_spec, task) for task in straggler.tasks
        ]
        assert coordinator.complete_lease(straggler.lease_id, late) is True
        assert coordinator.request_lease("helper") is None
        assert coordinator.done
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells

    def test_split_twin_delivery_is_duplicate(self, step_spec):
        coordinator = self._cell_coordinator(step_spec)
        straggler = coordinator.request_lease("straggler")
        self._drain_queue(coordinator, "helper")
        stolen = coordinator.request_lease("helper")
        # The straggler finishes first; the helper's stolen copy becomes a
        # duplicate and is ignored.
        late = [
            tasks_module.execute_task(step_spec, task) for task in straggler.tasks
        ]
        assert coordinator.complete_lease(straggler.lease_id, late) is True
        results = [tasks_module.execute_task(step_spec, task) for task in stolen.tasks]
        assert coordinator.complete_lease(stolen.lease_id, results) is False
        assert coordinator.stats["duplicates"] == 1
        self._drain(coordinator, "helper")
        assert coordinator.done

    def test_splitting_can_be_disabled(self, step_spec):
        coordinator = self._cell_coordinator(step_spec, split_stragglers=False)
        straggler = coordinator.request_lease("straggler")
        assert straggler is not None
        self._drain_queue(coordinator, "helper")
        assert coordinator.request_lease("helper") is None
        assert coordinator.stats["splits"] == 0

    def test_split_run_bit_identical_with_threads(self, step_spec, sequential_result):
        # End-to-end: a worker that sits on its first cell forever forces
        # the survivor to steal through splits (expiry can't help — the
        # lease outlives the test), and the reduced result is still
        # bit-identical to the sequential run.
        coordinator = Coordinator(
            step_spec, workers_hint=2, granularity="cell", lease_timeout=1000.0
        )

        class _Death(RuntimeError):
            pass

        def die_on_first_lease(lease):
            raise _Death(f"worker died holding {lease.lease_id}")

        dying = Worker("dying", coordinator, on_lease=die_on_first_lease, poll=0.01)
        surviving = Worker("surviving", coordinator, poll=0.01)
        dying.start()
        surviving.start()
        dying.join(timeout=30)
        surviving.join(timeout=30)
        assert surviving.error is None
        assert coordinator.done
        assert coordinator.stats["splits"] >= 1
        assert coordinator.stats["reassignments"] == 0
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells

    def _drain(self, coordinator, worker_id):
        while True:
            lease = coordinator.request_lease(worker_id)
            if lease is None:
                break
            results = [
                tasks_module.execute_task(coordinator.spec, task)
                for task in lease.tasks
            ]
            coordinator.complete_lease(lease.lease_id, results)

    def _drain_queue(self, coordinator, worker_id):
        """Execute only what is already queued (stops before stealing)."""
        while coordinator.pending_count:
            lease = coordinator.request_lease(worker_id)
            results = [
                tasks_module.execute_task(coordinator.spec, task)
                for task in lease.tasks
            ]
            coordinator.complete_lease(lease.lease_id, results)


# ---------------------------------------------------------------------------
# Coordinator backend end-to-end (bit-identity incl. worker death)
# ---------------------------------------------------------------------------
class TestCoordinatorBackend:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_sequential(self, step_spec, sequential_result, workers):
        result = run_scenario(step_spec, backend="coordinator", workers=workers)
        assert result.cells == sequential_result.cells

    def test_spec_backend_field_selects_coordinator(self, step_spec, sequential_result):
        spec = dataclasses.replace(step_spec, backend="coordinator", workers=2)
        assert run_scenario(spec).cells == sequential_result.cells

    def test_worker_death_mid_lease(self, step_spec, sequential_result):
        # One worker dies on its first lease; the lease expires and the
        # surviving worker finishes the run with identical output.
        coordinator = Coordinator(step_spec, workers_hint=2, lease_timeout=0.2)

        class _Death(RuntimeError):
            pass

        def die_on_first_lease(lease):
            raise _Death(f"worker died holding {lease.lease_id}")

        dying = Worker("dying", coordinator, on_lease=die_on_first_lease, poll=0.01)
        surviving = Worker("surviving", coordinator, poll=0.01)
        dying.start()
        surviving.start()
        dying.join(timeout=30)
        surviving.join(timeout=30)
        assert isinstance(dying.error, _Death)
        assert surviving.error is None
        assert coordinator.done
        # The survivor takes over either by lease expiry (reassignment) or
        # by stealing the dead worker's cell through a straggler split.
        stats = coordinator.stats
        assert stats["reassignments"] + stats["splits"] >= 1
        cells = reduce_task_results(step_spec, coordinator.results())
        assert cells == sequential_result.cells


# ---------------------------------------------------------------------------
# Warm cache: zero DP-reference leaves executed
# ---------------------------------------------------------------------------
class TestWarmCache:
    def test_cold_run_populates_cache(self, step_spec, sequential_result, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        result = run_scenario(
            step_spec, backend="coordinator", workers=1, cache=cache
        )
        assert result.cells == sequential_result.cells
        assert len(cache) == len(schedule_tasks(step_spec))

    def test_warm_rerun_executes_zero_reference_leaves(
        self, step_spec, sequential_result, tmp_path, monkeypatch
    ):
        cache_dir = os.fspath(tmp_path / "cache")
        run_scenario(
            step_spec, backend="coordinator", workers=1, cache=TaskCache(cache_dir)
        )
        # A variant of the figure (different algorithm set) shares the
        # DP-reference leaves.  With the reference computation rigged to
        # explode, only cache hits can complete the warm run.
        variant = dataclasses.replace(
            step_spec, name="dist-smoke-variant", algorithms=("RandomSampling",)
        )
        variant_sequential = run_scenario(variant, workers=1)
        clear_reference_memo()

        def boom(*args, **kwargs):
            raise AssertionError("DP reference leaf executed despite warm cache")

        monkeypatch.setattr(tasks_module, "dp_reference_frontier", boom)
        coordinator = run_coordinated(variant, workers=1, cache=TaskCache(cache_dir))
        assert coordinator.stats["cache_hits"] >= (
            variant.num_cells * variant.num_test_cases
        )
        assert not any(
            task.role == ROLE_REFERENCE for task in coordinator.scheduled_tasks
        )
        cells = reduce_task_results(variant, coordinator.results())
        assert cells == variant_sequential.cells

    def test_local_backend_also_uses_cache(self, step_spec, sequential_result, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        first = run_scenario(step_spec, workers=1, cache=cache)
        assert first.cells == sequential_result.cells
        warm = TaskCache(os.fspath(tmp_path / "cache"))
        second = run_scenario(step_spec, workers=1, cache=warm)
        assert second.cells == sequential_result.cells
        assert warm.stats["hits"] == len(schedule_tasks(step_spec))
        assert warm.stats["stores"] == 0


# ---------------------------------------------------------------------------
# In-process reference memo (non-coordinator satellite)
# ---------------------------------------------------------------------------
class TestReferenceMemo:
    def test_plain_run_scenario_memoizes_reference_leaves(
        self, step_spec, monkeypatch
    ):
        clear_reference_memo()
        baseline = run_scenario(step_spec, workers=1)
        expected_refs = step_spec.num_cells * step_spec.num_test_cases
        assert reference_memo_size() == expected_refs

        def boom(*args, **kwargs):
            raise AssertionError("DP reference recomputed despite memo")

        monkeypatch.setattr(tasks_module, "dp_reference_frontier", boom)
        variant = dataclasses.replace(
            step_spec, name="memo-variant", step_checkpoints=(2, 3)
        )
        rerun = run_scenario(variant, workers=1)
        for cell in rerun.cells:
            assert cell.checkpoints == (2.0, 3.0)

    def test_wall_clock_references_are_not_memoized(self, step_spec):
        clear_reference_memo()
        wall_clock = dataclasses.replace(
            step_spec,
            step_checkpoints=None,
            time_budget=0.05,
            checkpoints=(0.05,),
            reference_time_budget=0.5,
        )
        run_scenario(wall_clock, workers=1)
        assert reference_memo_size() == 0

    def test_clear_reference_memo_reports_size(self, step_spec):
        clear_reference_memo()
        run_scenario(step_spec, workers=1)
        assert clear_reference_memo() == (
            step_spec.num_cells * step_spec.num_test_cases
        )
        assert reference_memo_size() == 0


# ---------------------------------------------------------------------------
# File protocol (shared-directory leases)
# ---------------------------------------------------------------------------
class TestFileProtocol:
    def _reduce(self, spec, results):
        return ScenarioResult(spec=spec, cells=reduce_task_results(spec, results))

    def test_two_file_workers_match_sequential(
        self, step_spec, sequential_result, tmp_path
    ):
        workdir = os.fspath(tmp_path / "wd")
        meta = init_workdir(workdir, step_spec, workers_hint=2)
        assert meta["batches"] > 0
        threads = [
            threading.Thread(
                target=run_worker,
                args=(workdir,),
                kwargs={"worker_id": f"w{index}", "poll": 0.01},
            )
            for index in range(2)
        ]
        for thread in threads:
            thread.start()
        spec, results = collect_results(workdir, timeout=120, poll=0.01)
        for thread in threads:
            thread.join(timeout=30)
        assert self._reduce(spec, results).cells == sequential_result.cells

    def test_resume_reuses_existing_results(self, step_spec, tmp_path):
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec)
        run_worker(workdir, worker_id="w0", poll=0.01)
        # Re-initializing the same scenario resumes; a worker finds nothing
        # left to do.
        init_workdir(workdir, step_spec)
        assert run_worker(workdir, worker_id="w1", poll=0.01) == 0

    def test_foreign_scenario_refused(self, step_spec, tmp_path):
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec)
        other = dataclasses.replace(step_spec, seed=step_spec.seed + 1)
        with pytest.raises(ValueError, match="different scenario"):
            init_workdir(workdir, other)

    def test_expired_claim_is_stolen(self, step_spec, tmp_path):
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec, lease_timeout=0.1)
        claim_dir = os.path.join(workdir, "claims")
        # A worker claimed batch-0000 long ago and died.
        with open(os.path.join(claim_dir, "batch-0000.json"), "w") as handle:
            json.dump({"worker": "dead", "claimed_at": 0.0}, handle)
        executed = run_worker(workdir, worker_id="survivor", poll=0.01)
        spec, results = collect_results(workdir, timeout=30, poll=0.01)
        assert executed == load_workdir(workdir)[1]["batches"]
        assert len(results) == len(schedule_tasks(step_spec))

    def test_corrupt_result_file_is_purged_and_reexecuted(
        self, step_spec, sequential_result, tmp_path
    ):
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec)
        result_path = os.path.join(workdir, "results", "batch-0000.json")
        with open(result_path, "w") as handle:
            handle.write('{"format": "garbage"}')
        run_worker(workdir, worker_id="w0", poll=0.01)
        spec, results = collect_results(workdir, timeout=30, poll=0.01)
        assert self._reduce(spec, results).cells == sequential_result.cells

    def test_partial_result_file_is_purged_and_reexecuted(
        self, step_spec, sequential_result, tmp_path
    ):
        # A worker that drops one task from its batch (a partial shard)
        # must be detected and its batch re-executed.
        workdir = os.fspath(tmp_path / "wd")
        meta = init_workdir(workdir, step_spec, workers_hint=1)  # cell batches
        run_worker(workdir, worker_id="w0", poll=0.01)
        result_path = os.path.join(workdir, "results", "batch-0000.json")
        with open(result_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload["results"]) > 1
        payload["results"] = payload["results"][:-1]
        with open(result_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        run_worker(workdir, worker_id="w1", poll=0.01)
        spec, results = collect_results(workdir, timeout=30, poll=0.01)
        assert self._reduce(spec, results).cells == sequential_result.cells

    def test_unreadable_claim_expires_via_mtime(self, step_spec, tmp_path):
        # A worker killed between creating and writing its claim leaves a
        # 0-byte file; it must still expire (by mtime) instead of making
        # the batch permanently unclaimable.
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec, lease_timeout=0.1)
        claim_path = os.path.join(workdir, "claims", "batch-0000.json")
        open(claim_path, "w").close()  # empty claim
        old = 1.0  # epoch: long past any lease timeout
        os.utime(claim_path, (old, old))
        executed = run_worker(workdir, worker_id="survivor", poll=0.01)
        assert executed == load_workdir(workdir)[1]["batches"]

    def test_lost_cache_prefill_is_rebuilt(
        self, step_spec, sequential_result, tmp_path
    ):
        # results/cached.json holds tasks that exist in no queue batch; if
        # it is corrupted after init, collect must rebuild it (from the
        # cache) rather than fail coverage forever.
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        run_scenario(step_spec, workers=1, cache=cache)
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec, cache=cache)
        cached_path = os.path.join(workdir, "results", "cached.json")
        with open(cached_path, "w") as handle:
            handle.write("{corrupt")
        spec, results = collect_results(workdir, timeout=30, poll=0.01, cache=cache)
        assert self._reduce(spec, results).cells == sequential_result.cells

    def test_lost_cache_prefill_reexecutes_without_cache(
        self, step_spec, sequential_result, tmp_path
    ):
        # Same scenario but the collector has no cache attached: the
        # prefilled leaves are deterministic, so they are re-executed.
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        run_scenario(step_spec, workers=1, cache=cache)
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec, cache=cache)
        os.unlink(os.path.join(workdir, "results", "cached.json"))
        spec, results = collect_results(workdir, timeout=30, poll=0.01)
        assert self._reduce(spec, results).cells == sequential_result.cells

    def test_collect_timeout(self, step_spec, tmp_path):
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec)
        with pytest.raises(TimeoutError):
            collect_results(workdir, timeout=0.05, poll=0.01)

    def test_stop_event_ends_worker_promptly(self, step_spec, tmp_path):
        # The coordinate CLI sets this event when the collector gives up;
        # the worker must return at the next batch boundary.
        workdir = os.fspath(tmp_path / "wd")
        init_workdir(workdir, step_spec)
        stop = threading.Event()
        stop.set()
        assert run_worker(workdir, worker_id="w0", stop=stop) == 0

    def test_cache_prefill_skips_queue(self, step_spec, tmp_path):
        cache = TaskCache(os.fspath(tmp_path / "cache"))
        run_scenario(step_spec, workers=1, cache=cache)
        workdir = os.fspath(tmp_path / "wd")
        meta = init_workdir(workdir, step_spec, cache=cache)
        assert meta["batches"] == 0
        assert meta["cached_tasks"] == len(schedule_tasks(step_spec))
        spec, results = collect_results(workdir, timeout=5, poll=0.01)
        assert len(results) == len(schedule_tasks(step_spec))
