"""Tests for the DP(α) baseline (dynamic-programming approximation schemes)."""


import pytest

from repro.baselines.dp import DPOptimizer
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.dominance import dominates
from repro.pareto.epsilon import approximation_error, is_alpha_approximation
from repro.plans.validation import validate_plan


class TestConstruction:
    def test_name_includes_alpha(self, chain_model):
        assert DPOptimizer(chain_model, alpha=2.0).name == "DP(2)"
        assert DPOptimizer(chain_model, alpha=1000.0).name == "DP(1000)"
        assert DPOptimizer(chain_model, alpha=float("inf")).name == "DP(Infinity)"
        assert DPOptimizer(chain_model, alpha=1.01).name == "DP(1.01)"

    def test_invalid_parameters_rejected(self, chain_model):
        with pytest.raises(ValueError):
            DPOptimizer(chain_model, alpha=0.5)
        with pytest.raises(ValueError):
            DPOptimizer(chain_model, tasks_per_step=0)

    def test_level_alpha_compounds_to_overall_alpha(self, chain_model, chain_query_4):
        optimizer = DPOptimizer(chain_model, alpha=2.0)
        joins = chain_query_4.num_tables - 1
        assert optimizer.level_alpha ** joins == pytest.approx(2.0)


class TestCompletion:
    def test_no_result_until_finished(self, chain_model):
        optimizer = DPOptimizer(chain_model, alpha=2.0, tasks_per_step=1)
        optimizer.step()
        assert optimizer.frontier() == []
        assert not optimizer.finished

    def test_finishes_on_small_query(self, chain_model, chain_query_4):
        optimizer = DPOptimizer(chain_model, alpha=2.0)
        optimizer.run(max_steps=10_000)
        assert optimizer.finished
        frontier = optimizer.frontier()
        assert frontier
        for plan in frontier:
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_step_after_finish_is_noop(self, two_table_query):
        model = MultiObjectiveCostModel(two_table_query, metrics=("time", "buffer"))
        optimizer = DPOptimizer(model, alpha=2.0)
        optimizer.run(max_steps=1_000)
        steps_before = optimizer.statistics.steps
        plans_before = optimizer.statistics.plans_built
        optimizer.step()
        assert optimizer.statistics.plans_built == plans_before
        assert optimizer.statistics.steps == steps_before

    def test_dp_table_covers_all_subsets(self, chain_model, chain_query_4):
        optimizer = DPOptimizer(chain_model, alpha=2.0)
        optimizer.run(max_steps=10_000)
        # Every non-empty subset of a 4-table query has cached plans
        # (the DP enumerates all subsets including Cartesian products).
        assert len(optimizer.plan_cache) == 2 ** chain_query_4.num_tables - 1


class TestResultQuality:
    def test_exhaustive_dp_dominates_any_single_plan(self, chain_model, rng):
        """No random plan may strictly dominate every plan of a fine DP result."""
        from repro.core.random_plans import RandomPlanGenerator

        optimizer = DPOptimizer(chain_model, alpha=1.01)
        optimizer.run(max_steps=100_000)
        frontier_costs = [plan.cost for plan in optimizer.frontier()]
        generator = RandomPlanGenerator(chain_model, rng)
        for _ in range(30):
            candidate = generator.random_bushy_plan()
            covered = any(
                dominates(cost, candidate.cost) or cost == candidate.cost
                for cost in frontier_costs
            )
            strictly_better_than_all = all(
                dominates(candidate.cost, cost) and candidate.cost != cost
                for cost in frontier_costs
            )
            assert covered or not strictly_better_than_all

    def test_alpha_guarantee_against_fine_reference(self, two_metric_model):
        """DP(α) output must α-approximate the near-exact DP(1.01) frontier."""
        fine = DPOptimizer(two_metric_model, alpha=1.01)
        fine.run(max_steps=100_000)
        reference = [plan.cost for plan in fine.frontier()]

        coarse = DPOptimizer(two_metric_model, alpha=3.0)
        coarse.run(max_steps=100_000)
        produced = [plan.cost for plan in coarse.frontier()]
        # Allow the 1.01 slack of the reference itself on top of alpha.
        assert is_alpha_approximation(produced, reference, 3.0 * 1.02)

    def test_coarser_alpha_keeps_fewer_or_equal_plans(self, chain_model):
        fine = DPOptimizer(chain_model, alpha=1.01)
        fine.run(max_steps=100_000)
        coarse = DPOptimizer(chain_model, alpha=float("inf"))
        coarse.run(max_steps=100_000)
        assert len(coarse.frontier()) <= len(fine.frontier())
        assert coarse.statistics.plans_built <= fine.statistics.plans_built

    def test_dp_reference_beats_single_random_plans(self, chain_model, rng):
        from repro.core.random_plans import RandomPlanGenerator

        optimizer = DPOptimizer(chain_model, alpha=1.01)
        optimizer.run(max_steps=100_000)
        reference = [plan.cost for plan in optimizer.frontier()]
        generator = RandomPlanGenerator(chain_model, rng)
        random_costs = [generator.random_bushy_plan().cost for _ in range(20)]
        # The DP frontier approximates random plans well (they are all
        # dominated or equal), so the error of the DP result measured against
        # a reference that includes the random plans stays close to one.
        combined_reference = reference + random_costs
        assert approximation_error(reference, combined_reference) <= 1.02


class TestLargeQueriesAreBounded:
    def test_large_query_step_is_bounded_and_incomplete(self, rng):
        """On a 30-table query a few DP steps must neither finish nor blow up."""
        from repro.query.generator import QueryGenerator
        from repro.query.join_graph import GraphShape

        query = QueryGenerator(rng=rng).generate(30, GraphShape.CHAIN)
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer"))
        optimizer = DPOptimizer(model, alpha=2.0, tasks_per_step=20)
        for _ in range(10):
            optimizer.step()
        assert not optimizer.finished
        assert optimizer.frontier() == []
