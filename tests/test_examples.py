"""Smoke tests for the example applications.

Each example is executed in-process (by importing its module and calling
``main`` with reduced parameters) so that documentation code stays working as
the library evolves.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    """Import an example script as a module without running its __main__ block."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_examples_directory_contains_required_scripts(self):
        names = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart" in names
        assert len(names) >= 3


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.main(num_tables=6, iterations=5, seed=1)
        output = capsys.readouterr().out
        assert "Pareto-optimal cost tradeoffs" in output
        assert "fastest plan" in output

    def test_cloud_cost_tradeoff(self, capsys):
        module = load_example("cloud_cost_tradeoff")
        module.main(budget=1e9, iterations=5, seed=1)
        output = capsys.readouterr().out
        assert "Pareto frontier" in output
        assert "Selected plan" in output

    def test_cloud_cost_tradeoff_budget_too_small(self, capsys):
        module = load_example("cloud_cost_tradeoff")
        module.main(budget=1e-3, iterations=4, seed=1)
        output = capsys.readouterr().out
        assert "No plan fits the budget" in output

    def test_approximate_query_processing(self, capsys):
        module = load_example("approximate_query_processing")
        module.main(iterations=6, seed=2)
        output = capsys.readouterr().out
        assert "precision loss" in output
        assert "Plan selection" in output

    def test_large_query_scaling(self, capsys):
        module = load_example("large_query_scaling")
        # Keep the per-query budget tiny; the point is that every size yields plans.
        original_sizes = (10, 25, 50, 75, 100)
        module.main(budget=0.1, seed=1, store_demo_plans=150, dp_tables=(6,))
        output = capsys.readouterr().out
        for size in original_sizes:
            assert str(size) in output
        # The frontier-store section promised in the module docstring.
        assert "Frontier-store comparison" in output
        for store in ("flat", "sorted", "ndtree", "auto"):
            assert store in output
        assert "all stores kept identical frontiers" in output
        # The vectorized-DP section promised in the module docstring.
        assert "DP reference scaling" in output
        assert "DP(Infinity)" in output
        assert "arena engine" in output

    def test_large_query_scaling_dp_section_optional(self, capsys):
        module = load_example("large_query_scaling")
        module.main(budget=0.05, seed=1, store_demo_plans=0, dp_tables=())
        output = capsys.readouterr().out
        assert "DP reference scaling" not in output

    def test_interactive_frontier(self, capsys):
        module = load_example("interactive_frontier")
        module.main(seed=3)
        output = capsys.readouterr().out
        assert "tradeoffs available" in output
        assert "x = time" in output
        # The archive summary promised in the module docstring.
        assert "candidate archive:" in output
        assert "policy: auto" in output

    def test_interactive_frontier_pinned_store(self, capsys):
        module = load_example("interactive_frontier")
        module.main(seed=3, store="sorted")
        output = capsys.readouterr().out
        assert "store: sorted, policy: sorted" in output

    def test_interactive_frontier_render_helper(self):
        module = load_example("interactive_frontier")
        rendering = module.render_frontier([(1.0, 10.0), (5.0, 2.0)], width=20, height=5)
        assert rendering.count("*") == 2
        assert module.render_frontier([]) == "(no plans yet)"

    def test_compare_algorithms(self, capsys):
        module = load_example("compare_algorithms")
        module.main(num_tables=5, budget=0.15, seed=1)
        output = capsys.readouterr().out
        assert "Approximation error" in output
        assert "RMQ" in output
