"""Unit tests for repro.query.catalog."""

import pytest

from repro.query.catalog import Catalog


@pytest.fixture
def sample_catalog():
    catalog = Catalog()
    catalog.add_table("customers", 10_000, row_width=150)
    catalog.add_table("orders", 100_000, row_width=80)
    catalog.add_table("lineitems", 500_000, row_width=120)
    return catalog


class TestCatalogTables:
    def test_add_and_lookup(self, sample_catalog):
        assert sample_catalog.has_table("orders")
        assert sample_catalog.cardinality("orders") == 100_000
        assert sample_catalog.num_tables == 3

    def test_table_names_in_insertion_order(self, sample_catalog):
        assert sample_catalog.table_names() == ["customers", "orders", "lineitems"]

    def test_reregister_overwrites(self, sample_catalog):
        sample_catalog.add_table("orders", 42)
        assert sample_catalog.cardinality("orders") == 42
        assert sample_catalog.num_tables == 3

    def test_remove_table(self, sample_catalog):
        sample_catalog.remove_table("orders")
        assert not sample_catalog.has_table("orders")
        with pytest.raises(KeyError):
            sample_catalog.remove_table("orders")

    def test_invalid_statistics_rejected(self):
        catalog = Catalog()
        with pytest.raises(ValueError):
            catalog.add_table("bad", 0)
        with pytest.raises(ValueError):
            catalog.add_table("bad", 10, row_width=0)


class TestQueryBuilding:
    def test_build_query(self, sample_catalog):
        query = sample_catalog.build_query(
            ["customers", "orders", "lineitems"],
            [("customers", "orders", 1e-4), ("orders", "lineitems", 1e-5)],
            name="q1",
        )
        assert query.num_tables == 3
        assert query.name == "q1"
        assert query.table(0).name == "customers"
        assert query.selectivity_between({0}, {1}) == pytest.approx(1e-4)

    def test_unknown_table_rejected(self, sample_catalog):
        with pytest.raises(KeyError):
            sample_catalog.build_query(["customers", "nope"], [])

    def test_duplicate_table_rejected(self, sample_catalog):
        with pytest.raises(ValueError):
            sample_catalog.build_query(["orders", "orders"], [])

    def test_predicate_outside_query_rejected(self, sample_catalog):
        with pytest.raises(KeyError):
            sample_catalog.build_query(
                ["customers", "orders"], [("orders", "lineitems", 0.1)]
            )

    def test_empty_query_rejected(self, sample_catalog):
        with pytest.raises(ValueError):
            sample_catalog.build_query([], [])

    def test_query_tables_reindexed(self, sample_catalog):
        query = sample_catalog.build_query(
            ["lineitems", "customers"], [("lineitems", "customers", 0.01)]
        )
        assert query.table(0).name == "lineitems"
        assert query.table(1).name == "customers"
        assert query.table(0).index == 0
        assert query.table(1).index == 1
