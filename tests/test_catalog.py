"""Unit tests for repro.query.catalog."""

import pytest

from repro.query.catalog import (
    CATALOG_FORMAT,
    Catalog,
    catalog_from_json_dict,
    job_sample_catalog,
    load_catalog,
)


@pytest.fixture
def sample_catalog():
    catalog = Catalog()
    catalog.add_table("customers", 10_000, row_width=150)
    catalog.add_table("orders", 100_000, row_width=80)
    catalog.add_table("lineitems", 500_000, row_width=120)
    return catalog


class TestCatalogTables:
    def test_add_and_lookup(self, sample_catalog):
        assert sample_catalog.has_table("orders")
        assert sample_catalog.cardinality("orders") == 100_000
        assert sample_catalog.num_tables == 3

    def test_table_names_in_insertion_order(self, sample_catalog):
        assert sample_catalog.table_names() == ["customers", "orders", "lineitems"]

    def test_reregister_overwrites(self, sample_catalog):
        sample_catalog.add_table("orders", 42)
        assert sample_catalog.cardinality("orders") == 42
        assert sample_catalog.num_tables == 3

    def test_remove_table(self, sample_catalog):
        sample_catalog.remove_table("orders")
        assert not sample_catalog.has_table("orders")
        with pytest.raises(KeyError):
            sample_catalog.remove_table("orders")

    def test_invalid_statistics_rejected(self):
        catalog = Catalog()
        with pytest.raises(ValueError):
            catalog.add_table("bad", 0)
        with pytest.raises(ValueError):
            catalog.add_table("bad", 10, row_width=0)


class TestQueryBuilding:
    def test_build_query(self, sample_catalog):
        query = sample_catalog.build_query(
            ["customers", "orders", "lineitems"],
            [("customers", "orders", 1e-4), ("orders", "lineitems", 1e-5)],
            name="q1",
        )
        assert query.num_tables == 3
        assert query.name == "q1"
        assert query.table(0).name == "customers"
        assert query.selectivity_between({0}, {1}) == pytest.approx(1e-4)

    def test_unknown_table_rejected(self, sample_catalog):
        with pytest.raises(KeyError):
            sample_catalog.build_query(["customers", "nope"], [])

    def test_duplicate_table_rejected(self, sample_catalog):
        with pytest.raises(ValueError):
            sample_catalog.build_query(["orders", "orders"], [])

    def test_predicate_outside_query_rejected(self, sample_catalog):
        with pytest.raises(KeyError):
            sample_catalog.build_query(
                ["customers", "orders"], [("orders", "lineitems", 0.1)]
            )

    def test_empty_query_rejected(self, sample_catalog):
        with pytest.raises(ValueError):
            sample_catalog.build_query([], [])

    def test_query_tables_reindexed(self, sample_catalog):
        query = sample_catalog.build_query(
            ["lineitems", "customers"], [("lineitems", "customers", 0.01)]
        )
        assert query.table(0).name == "lineitems"
        assert query.table(1).name == "customers"
        assert query.table(0).index == 0
        assert query.table(1).index == 1


class TestColumnStatistics:
    def test_columns_and_join_key_distinct(self):
        catalog = Catalog()
        catalog.add_table("t", 1_000, columns={"id": 1_000, "group_id": 40})
        assert dict(catalog.columns("t")) == {"id": 1_000.0, "group_id": 40.0}
        assert catalog.join_key_distinct("t") == 1_000.0

    def test_join_key_distinct_falls_back_to_cardinality(self):
        catalog = Catalog()
        catalog.add_table("t", 77)
        assert catalog.columns("t") == ()
        assert catalog.join_key_distinct("t") == 77.0

    def test_invalid_distinct_count_rejected(self):
        catalog = Catalog()
        with pytest.raises(ValueError, match="t.bad"):
            catalog.add_table("t", 100, columns={"bad": 0})


class TestJsonSchemaImport:
    def _schema(self):
        return {
            "format": CATALOG_FORMAT,
            "tables": [
                {"name": "a", "cardinality": 100, "row_width": 50,
                 "columns": {"id": 100, "b_id": 10}},
                {"name": "b", "cardinality": 10},
            ],
        }

    def test_round_trip(self, sample_catalog):
        rebuilt = catalog_from_json_dict(sample_catalog.to_json_dict())
        assert rebuilt.table_names() == sample_catalog.table_names()
        for name in sample_catalog.table_names():
            assert rebuilt.cardinality(name) == sample_catalog.cardinality(name)
            assert rebuilt.row_width(name) == sample_catalog.row_width(name)
            assert rebuilt.columns(name) == sample_catalog.columns(name)

    def test_import_reads_all_statistics(self):
        catalog = catalog_from_json_dict(self._schema())
        assert catalog.table_names() == ["a", "b"]
        assert catalog.cardinality("a") == 100.0
        assert catalog.row_width("a") == 50.0
        assert catalog.join_key_distinct("a") == 100.0
        assert catalog.join_key_distinct("b") == 10.0

    def test_wrong_format_rejected(self):
        schema = self._schema()
        schema["format"] = "something-else"
        with pytest.raises(ValueError, match="format"):
            catalog_from_json_dict(schema)

    def test_missing_tables_rejected(self):
        with pytest.raises(ValueError, match="tables"):
            catalog_from_json_dict({"format": CATALOG_FORMAT, "tables": []})

    def test_duplicate_table_rejected(self):
        schema = self._schema()
        schema["tables"].append({"name": "a", "cardinality": 5})
        with pytest.raises(ValueError, match="'a'.*twice"):
            catalog_from_json_dict(schema)

    def test_corrupt_table_entry_names_table(self):
        schema = self._schema()
        schema["tables"][1]["cardinality"] = -3
        with pytest.raises(ValueError, match="'b'"):
            catalog_from_json_dict(schema)

    def test_load_catalog_file(self, tmp_path):
        import json

        path = tmp_path / "schema.json"
        path.write_text(json.dumps(self._schema()))
        catalog = load_catalog(str(path))
        assert catalog.num_tables == 2

    def test_load_invalid_json_names_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="broken.json"):
            load_catalog(str(path))


class TestBundledJobSample:
    def test_loads_with_full_coverage(self):
        catalog = job_sample_catalog()
        assert catalog.num_tables == 12
        assert catalog.has_table("title")
        assert catalog.has_table("cast_info")
        for name in catalog.table_names():
            assert catalog.cardinality(name) >= 1
            assert catalog.join_key_distinct(name) >= 1

    def test_real_proportions_preserved(self):
        catalog = job_sample_catalog()
        # cast_info is the largest JOB table, kind_type the smallest.
        assert catalog.cardinality("cast_info") == max(
            catalog.cardinality(name) for name in catalog.table_names()
        )
        assert catalog.cardinality("kind_type") == min(
            catalog.cardinality(name) for name in catalog.table_names()
        )
