"""Tests for the observability layer (repro.obs).

Three headline properties:

* **Zero overhead when disabled** — the disabled span fast path returns
  the shared identity sentinel, allocates nothing, and reads no clock.
* **Determinism untouched** — traced and untraced runs produce
  bit-identical frontiers (fingerprints), scenario results, and RNG
  streams.
* **Deterministic folding** — per-worker metrics snapshots merge into the
  same driver totals regardless of arrival order.
"""

import json
import logging
import math
import random
import tracemalloc

import pytest

import repro.obs as obs
from repro.baselines.dp import ArenaDPOptimizer
from repro.bench.runner import run_scenario
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.cost.model import MultiObjectiveCostModel
from repro.dist.cache import CACHE_RAW_FORMAT, TaskCache
from repro.dist.worker import run_coordinated
from repro.obs import (
    HISTOGRAM_BUCKETS,
    METRICS_SNAPSHOT_FORMAT,
    NULL_SPAN,
    NULL_TRACER,
    Histogram,
    Metrics,
    MetricsPublisher,
    Tracer,
    bucket_bounds,
    bucket_index,
    chrome_trace_payload,
    merge_snapshots,
    render_dashboard,
    render_metrics_report,
    tail_dashboard,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.query.generator import QueryGenerator
from repro.query.join_graph import GraphShape
from repro.regress import frontier_fingerprint


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts untraced with an empty global registry."""
    obs.disable_tracing()
    obs.reset_global_metrics()
    yield
    obs.disable_tracing()
    obs.reset_global_metrics()


def micro_spec(**overrides):
    """A seconds-scale step-driven spec exercising the coordinator."""
    base = dict(
        name="obs-micro",
        description="observability micro spec",
        graph_shapes=(GraphShape.CHAIN,),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RandomSampling", "RMQ"),
        num_test_cases=2,
        step_checkpoints=(2, 4),
        reference_algorithm="DP(1.01)",
        seed=11,
        scale=ScenarioScale.SMOKE,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _dp_model(seed=3, num_tables=5):
    query = QueryGenerator(rng=random.Random(seed)).generate(
        num_tables, GraphShape.CHAIN
    )
    return MultiObjectiveCostModel(query, metrics=("time", "buffer"))


# ---------------------------------------------------------------------------
# Histogram buckets
# ---------------------------------------------------------------------------
class TestBuckets:
    def test_edges(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(math.nan) == 0
        assert bucket_index(math.inf) == HISTOGRAM_BUCKETS - 1
        assert bucket_index(0.75) == 64
        # Powers of two land at the *bottom* of the next bucket.
        assert bucket_index(1.0) == bucket_index(0.5) + 1

    def test_bucket_bounds_cover_their_values(self):
        for value in (1e-9, 0.001, 0.75, 1.0, 3.0, 1e9):
            low, high = bucket_bounds(bucket_index(value))
            assert low <= value < high

    def test_bounds_reject_out_of_range(self):
        with pytest.raises(ValueError):
            bucket_bounds(-1)
        with pytest.raises(ValueError):
            bucket_bounds(HISTOGRAM_BUCKETS)

    def test_observations_are_order_independent(self):
        values = [0.01 * i for i in range(1, 200)]
        forward, backward = Histogram(), Histogram()
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.buckets == backward.buckets
        assert forward.count == backward.count
        assert forward.min == backward.min and forward.max == backward.max

    def test_round_trip(self):
        histogram = Histogram()
        for value in (0.1, 0.25, 4.0, 4.0):
            histogram.observe(value)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.to_dict() == histogram.to_dict()
        assert clone.mean == histogram.mean


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        metrics = Metrics()
        assert metrics.add("cache.hits") == 1
        assert metrics.add("cache.hits", 2) == 3
        assert metrics.counter("cache.hits") == 3
        assert metrics.counter("never.written") == 0
        metrics.gauge("frontier.rows", 17.0)
        assert metrics.gauge_value("frontier.rows") == 17.0
        metrics.observe("lease.seconds", 0.25)
        assert metrics.histogram("lease.seconds").count == 1
        assert len(metrics) == 3
        assert metrics.counters("cache.") == {"cache.hits": 3}

    def test_snapshot_round_trip(self):
        metrics = Metrics()
        metrics.add("a", 2)
        metrics.gauge("g", 1.5)
        metrics.observe("h", 0.75)
        clone = Metrics.from_snapshot(metrics.snapshot())
        assert clone.snapshot() == metrics.snapshot()
        # Snapshots are plain JSON.
        json.dumps(metrics.snapshot())

    def test_merge_is_order_independent(self):
        parts = []
        for seed in range(4):
            rng = random.Random(seed)
            metrics = Metrics()
            for _ in range(50):
                metrics.add("counter", rng.randrange(5))
                metrics.observe("latency", rng.random())
                metrics.gauge("rows", rng.random())
            parts.append(metrics.snapshot())
        forward = merge_snapshots(parts)
        backward = merge_snapshots(reversed(parts))
        assert forward == backward

    def test_merge_semantics(self):
        merged = Metrics()
        merged.add("count", 1)
        merged.gauge("rows", 10.0)
        other = Metrics()
        other.add("count", 2)
        other.gauge("rows", 5.0)
        merged.merge_snapshot(other.snapshot())
        assert merged.counter("count") == 3
        assert merged.gauge_value("rows") == 10.0  # gauges merge by max

    def test_merge_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            Metrics().merge_snapshot({"format": "not-a-metrics-snapshot"})

    def test_clear(self):
        metrics = Metrics()
        metrics.add("a")
        metrics.clear()
        assert len(metrics) == 0


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_deterministic_span_and_event_records(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: next(ticks) / 1000.0)  # 1 ms per tick
        with tracer.span("dp.level", tables=3):
            tracer.event("dp.level.scheduled", subsets=5)
        instant, complete = tracer.events()
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["name"] == "dp.level.scheduled"
        assert instant["args"] == {"subsets": 5}
        assert complete["ph"] == "X"
        assert complete["name"] == "dp.level"
        assert complete["ts"] == 1000.0  # entered at tick 1 (epoch = tick 0)
        assert complete["dur"] == 2000.0
        assert complete["args"] == {"tables": 3}

    def test_nested_spans_record_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [event["name"] for event in tracer.events()]
        assert names == ["inner", "outer"]

    def test_len_and_clear(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        assert len(tracer) == 1
        tracer.clear()
        assert tracer.events() == []


# ---------------------------------------------------------------------------
# The disabled fast path (the tentpole's zero-overhead guarantee)
# ---------------------------------------------------------------------------
class TestDisabledOverhead:
    def test_identity_sentinels(self):
        assert obs.get_tracer() is NULL_TRACER
        assert obs.get_tracer().span("dp.level") is NULL_SPAN
        assert obs.get_tracer().span("other", tables=3) is NULL_SPAN
        assert not NULL_TRACER.enabled
        assert not NULL_SPAN.enabled
        assert NULL_TRACER.events() == []

    def test_null_span_fast_path_retains_no_memory(self):
        tracer = obs.get_tracer()
        for _ in range(100):  # warm every code path and cache
            with tracer.span("dp.level"):
                pass
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(5000):
            with tracer.span("dp.level"):
                pass
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        retained = sum(
            stat.size_diff
            for stat in after.compare_to(before, "lineno")
            if stat.size_diff > 0
        )
        # 5000 disabled spans must not retain memory; allow tracemalloc's
        # own bookkeeping noise.
        assert retained < 4096

    def test_enable_disable_round_trip(self):
        assert not obs.tracing_enabled()
        tracer = obs.enable_tracing()
        assert obs.tracing_enabled()
        assert obs.get_tracer() is tracer
        assert obs.disable_tracing() is tracer
        assert obs.get_tracer() is NULL_TRACER

    def test_env_gate_only_turns_tracing_on(self):
        assert not obs.configure_from_env({})
        assert not obs.configure_from_env({"REPRO_TRACE": "0"})
        assert obs.get_tracer() is NULL_TRACER
        assert obs.configure_from_env({"REPRO_TRACE": "1"})
        installed = obs.get_tracer()
        assert installed.enabled
        # The gate never reverts an active tracer.
        assert obs.configure_from_env({})
        assert obs.get_tracer() is installed
        for truthy in ("true", "YES", "On"):
            obs.disable_tracing()
            assert obs.configure_from_env({"REPRO_TRACE": truthy})


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestChromeTraceExport:
    def test_payload_validates_and_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("scenario.execute", backend="local"):
            tracer.event("cache.corrupt_entry", key="k")
        payload = chrome_trace_payload(tracer)
        assert validate_chrome_trace(payload) == []
        path = tmp_path / "trace.json"
        assert write_chrome_trace(tracer, str(path)) == 2
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(loaded) == []

    def test_validator_flags_malformed_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad = {
            "traceEvents": [
                {"ph": "X", "ts": 0.0, "pid": 1, "tid": 1},  # no name/dur
                {"name": "e", "ph": "i", "ts": 0.0, "pid": 1, "tid": 1},  # no s
                {"name": "e", "ph": "q", "ts": 0.0, "pid": 1, "tid": 1},
                "not-an-object",
            ]
        }
        errors = validate_chrome_trace(bad)
        assert len(errors) >= 4

    def test_non_serializable_args_are_stringified_on_write(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", shape=GraphShape.CHAIN):  # enum: not raw JSON
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        json.loads(path.read_text())  # default=str made it serializable


class TestMetricsReport:
    def test_sections_and_alignment(self):
        metrics = Metrics()
        metrics.add("cache.hits", 3)
        metrics.gauge("frontier.rows", 17.0)
        metrics.observe("coordinator.lease_seconds", 0.25)
        report = render_metrics_report(metrics.snapshot())
        assert "== counters ==" in report
        assert "== gauges ==" in report
        assert "== histograms ==" in report
        assert "cache.hits" in report and "3" in report

    def test_empty_and_foreign(self):
        assert render_metrics_report(Metrics().snapshot()) == "(no metrics recorded)"
        with pytest.raises(ValueError):
            render_metrics_report({"format": "something-else"})

    def test_snapshot_file_round_trip(self, tmp_path):
        metrics = Metrics()
        metrics.add("a", 7)
        path = tmp_path / "metrics.json"
        write_metrics_snapshot(str(path), metrics.snapshot())
        assert json.loads(path.read_text())["counters"]["a"] == 7


# ---------------------------------------------------------------------------
# Dashboard
# ---------------------------------------------------------------------------
class TestDashboard:
    def test_render_is_pure_and_complete(self):
        metrics = Metrics()
        metrics.add("coordinator.completed", 7)
        metrics.add("coordinator.scheduled", 9)
        metrics.add("cache.hits", 3)
        metrics.add("cache.misses", 1)
        metrics.observe("coordinator.lease_seconds", 0.125)
        metrics.gauge("frontier.rows", 42)
        snapshot = metrics.snapshot()
        text = render_dashboard(snapshot)
        assert text == render_dashboard(snapshot)  # pure
        assert "completed=7" in text
        assert "inflight=2" in text
        assert "hit-rate=75.0%" in text
        assert "rows=42" in text
        assert "n=1" in text  # lease latency histogram

    def test_render_degrades_on_empty_snapshot(self):
        text = render_dashboard(Metrics().snapshot())
        assert "completed=0" in text
        assert "lease lat   n/a" in text

    def test_render_rejects_foreign_snapshot(self):
        with pytest.raises(ValueError):
            render_dashboard({"format": "nope"})

    def test_tail_waits_then_renders(self, tmp_path):
        path = tmp_path / "metrics.json"
        sleeps = []

        class Out:
            def __init__(self):
                self.chunks = []

            def write(self, chunk):
                self.chunks.append(chunk)

            def flush(self):
                pass

        out = Out()

        def sleep(seconds):
            sleeps.append(seconds)
            if len(sleeps) == 1:  # file appears between ticks
                metrics = Metrics()
                metrics.add("coordinator.completed", 2)
                write_metrics_snapshot(str(path), metrics.snapshot())

        drawn = tail_dashboard(
            str(path), interval=0.01, iterations=2, stream=out, sleep=sleep
        )
        assert drawn == 1
        assert "(waiting for metrics" in out.chunks[0]
        assert "completed=2" in out.chunks[1]

    def test_publisher_final_write(self, tmp_path):
        metrics = Metrics()
        metrics.add("coordinator.completed", 5)
        path = tmp_path / "pub.json"
        with MetricsPublisher(metrics, str(path), interval=30.0):
            pass  # interval never fires; stop() must still publish
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["coordinator.completed"] == 5


# ---------------------------------------------------------------------------
# Coordinator + cache integration
# ---------------------------------------------------------------------------
class TestCoordinatorMetrics:
    def test_stats_view_and_lease_latency(self):
        # "case" granularity makes every lease a single task, so the
        # lease-latency histogram count must equal the completed counter.
        coordinator = run_coordinated(micro_spec(), workers=1, granularity="case")
        stats = coordinator.stats
        assert stats["completed"] == stats["scheduled"] > 0
        # The legacy stats dict is a thin view over the metrics registry.
        for key, value in stats.items():
            assert coordinator.metrics.counter(f"coordinator.{key}") == value
        histogram = coordinator.metrics.histogram("coordinator.lease_seconds")
        assert histogram is not None
        assert histogram.count == stats["completed"]
        assert histogram.min >= 0.0
        # The coordinator also mirrored into the process-global registry.
        assert (
            obs.global_metrics().counter("coordinator.completed")
            == stats["completed"]
        )

    def test_traced_coordinator_run_emits_lease_lifecycle(self):
        tracer = obs.enable_tracing()
        try:
            run_coordinated(micro_spec(), workers=1)
        finally:
            obs.disable_tracing()
        names = {event["name"] for event in tracer.events()}
        assert "coordinator.lease.claimed" in names
        assert "coordinator.lease.completed" in names
        assert "worker.lease" in names
        assert validate_chrome_trace(chrome_trace_payload(tracer)) == []


class TestCorruptCacheEntries:
    def test_corrupt_raw_entry_warns_and_counts(self, tmp_path, caplog):
        cache = TaskCache(str(tmp_path / "cache"))
        cache.put_raw("some-key", {"value": 1})
        path = cache._entry_path("some-key")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated garbage")
        with caplog.at_level(logging.WARNING, logger="repro.dist.cache"):
            assert cache.get_raw("some-key") is None
        assert any("corrupt entry" in message for message in caplog.messages)
        assert cache.metrics.counter("cache.corrupt_entries") == 1
        assert cache.stats["misses"] == 1
        assert sorted(cache.stats) == ["evictions", "hits", "misses", "stores"]

    def test_foreign_format_counts_as_corrupt(self, tmp_path):
        cache = TaskCache(str(tmp_path / "cache"))
        cache.put_raw("some-key", {"value": 1})
        path = cache._entry_path("some-key")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "other", "key": "some-key", "payload": {}}, handle)
        assert cache.get_raw("some-key") is None
        assert cache.metrics.counter("cache.corrupt_entries") == 1

    def test_missing_entry_is_a_clean_miss(self, tmp_path):
        cache = TaskCache(str(tmp_path / "cache"))
        assert cache.get_raw("absent") is None
        assert cache.metrics.counter("cache.corrupt_entries") == 0
        assert cache.stats["misses"] == 1

    def test_corrupt_entry_emits_trace_event(self, tmp_path):
        cache = TaskCache(str(tmp_path / "cache"))
        cache.put_raw("k", {"value": 1})
        with open(cache._entry_path("k"), "w", encoding="utf-8") as handle:
            handle.write("nonsense")
        tracer = obs.enable_tracing()
        try:
            cache.get_raw("k")
        finally:
            obs.disable_tracing()
        names = [event["name"] for event in tracer.events()]
        assert "cache.corrupt_entry" in names

    def test_round_trip_still_works_and_counts_bytes(self, tmp_path):
        cache = TaskCache(str(tmp_path / "cache"))
        cache.put_raw("k", {"value": [1, 2, 3]})
        assert cache.get_raw("k") == {"value": [1, 2, 3]}
        assert cache.metrics.counter("cache.bytes_read") > 0
        assert cache.metrics.counter("cache.bytes_written") > 0


# ---------------------------------------------------------------------------
# Determinism: traced and untraced runs are bit-identical
# ---------------------------------------------------------------------------
class TestTracingDoesNotPerturb:
    def test_dp_coordinator_frontier_fingerprints_match(self):
        untraced = ArenaDPOptimizer(
            _dp_model(), alpha=1.5, backend="coordinator", workers=2
        )
        untraced.run(max_steps=10_000)
        baseline = frontier_fingerprint(untraced.frontier())

        obs.enable_tracing()
        try:
            traced = ArenaDPOptimizer(
                _dp_model(), alpha=1.5, backend="coordinator", workers=2
            )
            traced.run(max_steps=10_000)
            fingerprint = frontier_fingerprint(traced.frontier())
        finally:
            obs.disable_tracing()
        assert fingerprint == baseline

    def test_scenario_results_match(self):
        spec = micro_spec(name="obs-micro-traced")
        baseline = run_scenario(spec, workers=1)
        obs.enable_tracing()
        try:
            traced = run_scenario(spec, workers=1)
        finally:
            obs.disable_tracing()
        assert traced == baseline

    def test_tracing_consumes_no_rng(self):
        rng = random.Random(7)
        expected = [rng.random() for _ in range(5)]
        rng = random.Random(7)
        obs.enable_tracing()
        try:
            with obs.get_tracer().span("outer", tables=3):
                observed = [rng.random() for _ in range(5)]
        finally:
            obs.disable_tracing()
        assert observed == expected


# ---------------------------------------------------------------------------
# Worker metrics piggyback
# ---------------------------------------------------------------------------
class TestWorkerPiggyback:
    def test_process_pool_metrics_fold_into_driver(self):
        from repro.bench.tasks import clear_reference_memo
        from repro.dist.worker import shutdown_shared_pool

        # Pool workers fork from this process: restart the pool with an
        # empty reference memo so the DP leaves actually execute there
        # (memo keys are content-derived and ignore the spec name, so
        # earlier tests' runs would otherwise serve them from memory).
        shutdown_shared_pool()
        clear_reference_memo()
        obs.reset_global_metrics()
        run_coordinated(micro_spec(name="obs-pool"), workers=2)
        metrics = obs.global_metrics()
        # DP reference leaves ran in worker processes; their candidate
        # counters only reach the driver via the piggybacked snapshots.
        assert metrics.counter("dp.candidates") > 0
        assert metrics.counter("frontier.accepted") > 0

    def test_metered_execution_is_in_sync_with_plain(self):
        from repro.bench.tasks import (
            _execute_task_group,
            _execute_task_group_metered,
            schedule_tasks,
        )

        spec = micro_spec(name="obs-metered")
        tasks = schedule_tasks(spec)[:2]
        plain = _execute_task_group(spec, tasks)
        results, snapshot = _execute_task_group_metered(spec, tasks)
        assert snapshot["format"] == METRICS_SNAPSHOT_FORMAT

        def shape(task_results):
            # ``elapsed`` is wall-clock; compare everything else.
            return [
                (
                    result.task,
                    [
                        (record.checkpoint, record.steps, record.frontier_costs)
                        for record in result.records
                    ],
                )
                for result in task_results
            ]

        assert shape(results) == shape(plain)


# ---------------------------------------------------------------------------
# OptimizerStatistics thin view
# ---------------------------------------------------------------------------
class TestOptimizerStatisticsView:
    def test_increments_and_absolute_sets_back_onto_counters(self):
        from repro.core.interface import OptimizerStatistics

        statistics = OptimizerStatistics()
        statistics.steps += 1
        statistics.plans_built += 10
        statistics.plans_built = 7  # two_phase assigns absolutely
        assert statistics.steps == 1
        assert statistics.plans_built == 7
        assert statistics.metrics.counter("optimizer.steps") == 1
        assert statistics.metrics.counter("optimizer.plans_built") == 7

    def test_equality_matches_legacy_dataclass_semantics(self):
        from repro.core.interface import OptimizerStatistics

        assert OptimizerStatistics() == OptimizerStatistics()
        assert OptimizerStatistics(steps=1) != OptimizerStatistics()
        first = OptimizerStatistics(extra={"x": 1.0})
        second = OptimizerStatistics(extra={"x": 1.0})
        assert first == second
        second.extra["x"] = 2.0
        assert first != second

    def test_shared_registry_backing(self):
        from repro.core.interface import OptimizerStatistics

        shared = Metrics()
        first = OptimizerStatistics(metrics=shared)
        second = OptimizerStatistics(metrics=shared)
        first.steps += 2
        second.steps += 3
        assert shared.counter("optimizer.steps") == 5
