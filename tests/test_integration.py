"""End-to-end integration tests across modules.

These tests exercise the full optimize-and-compare pipeline the way the
benchmark harness and the examples use it, on deliberately small inputs.
"""

import random

import pytest

from repro.baselines import make_optimizer
from repro.baselines.dp import DPOptimizer
from repro.bench.reference import union_reference_frontier
from repro.cost.model import MultiObjectiveCostModel
from repro.core.rmq import RMQOptimizer
from repro.core.frontier import AlphaSchedule
from repro.pareto.epsilon import approximation_error
from repro.plans.printer import explain_plan, plan_signature
from repro.plans.validation import validate_plan
from repro.query.catalog import Catalog
from repro.query.generator import QueryGenerator
from repro.query.join_graph import GraphShape


class TestCatalogToPlanPipeline:
    def test_catalog_query_optimize_explain(self):
        catalog = Catalog()
        catalog.add_table("customers", 10_000)
        catalog.add_table("orders", 200_000)
        catalog.add_table("items", 1_000_000)
        query = catalog.build_query(
            ["customers", "orders", "items"],
            [("customers", "orders", 1e-4), ("orders", "items", 5e-6)],
            name="sales",
        )
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
        optimizer = RMQOptimizer(model, rng=random.Random(0))
        plans = optimizer.run(max_steps=10)
        assert plans
        for plan in plans:
            validate_plan(plan, query, model.library, model.num_metrics)
            rendering = explain_plan(plan, metric_names=model.metric_names)
            assert "customers" in rendering or "orders" in rendering
            assert plan_signature(plan)


class TestRMQConvergenceOnSmallQuery:
    def test_rmq_approaches_dp_reference(self, rng):
        """With a fine schedule and enough iterations RMQ gets close to DP(1.01).

        This is the qualitative claim of Figures 8/9 (RMQ converges towards a
        perfect approximation on small queries).
        """
        query = QueryGenerator(rng=rng).generate(4, GraphShape.CHAIN)
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer"))

        dp = DPOptimizer(model, alpha=1.01)
        dp.run(max_steps=1_000_000)
        reference = [plan.cost for plan in dp.frontier()]
        assert reference

        rmq = RMQOptimizer(
            model, rng=random.Random(1), schedule=AlphaSchedule.constant(1.0)
        )
        rmq.run(max_steps=60)
        error = approximation_error([p.cost for p in rmq.frontier()], reference)
        assert error <= 1.6

    def test_rmq_beats_sa_on_medium_query(self, rng):
        """RMQ should approximate the union reference better than SA (paper trend)."""
        query = QueryGenerator(rng=rng).generate(10, GraphShape.STAR)
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))

        rmq = RMQOptimizer(
            model, rng=random.Random(2), schedule=AlphaSchedule.compressed()
        )
        rmq.run(max_steps=15)
        sa = make_optimizer("SA", model, random.Random(2))
        sa.run(max_steps=15)

        rmq_costs = [plan.cost for plan in rmq.frontier()]
        sa_costs = [plan.cost for plan in sa.frontier()]
        reference = union_reference_frontier([rmq_costs, sa_costs])
        assert approximation_error(rmq_costs, reference) <= approximation_error(
            sa_costs, reference
        )


class TestAllAlgorithmsOnOneTestCase:
    @pytest.fixture(scope="class")
    def test_case(self):
        rng = random.Random(99)
        query = QueryGenerator(rng=rng).generate(6, GraphShape.CYCLE)
        return MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))

    @pytest.mark.parametrize(
        "name", ["RMQ", "II", "SA", "2P", "NSGA-II", "RandomSampling", "WeightedSum"]
    )
    def test_algorithm_produces_valid_frontier(self, name, test_case):
        optimizer = make_optimizer(name, test_case, random.Random(1))
        frontier = optimizer.run(max_steps=4)
        assert frontier, f"{name} produced no plans"
        for plan in frontier:
            validate_plan(
                plan, test_case.query, test_case.library, test_case.num_metrics
            )

    def test_union_reference_and_errors_are_consistent(self, test_case):
        frontiers = {}
        for name in ("RMQ", "II", "NSGA-II"):
            optimizer = make_optimizer(name, test_case, random.Random(5))
            frontiers[name] = [plan.cost for plan in optimizer.run(max_steps=4)]
        reference = union_reference_frontier(frontiers.values())
        errors = {
            name: approximation_error(costs, reference)
            for name, costs in frontiers.items()
        }
        assert all(error >= 1.0 for error in errors.values())
        # At least one algorithm attains the best (lowest) error, and that
        # error cannot be infinite because the reference is their union.
        assert min(errors.values()) < float("inf")


class TestExtensionScenarios:
    def test_cloud_library_monetary_time_tradeoff(self, rng):
        """With the cloud library, RMQ finds plans trading money for time."""
        from repro.plans.operators import OperatorLibrary

        query = QueryGenerator(rng=rng).generate(5, GraphShape.CHAIN)
        model = MultiObjectiveCostModel(
            query,
            metrics=("time", "monetary"),
            library=OperatorLibrary.cloud(parallelism_levels=(1, 8)),
        )
        optimizer = RMQOptimizer(
            model, rng=random.Random(3), schedule=AlphaSchedule.constant(1.0)
        )
        frontier = optimizer.run(max_steps=25)
        assert frontier
        times = [plan.cost[0] for plan in frontier]
        money = [plan.cost[1] for plan in frontier]
        if len(frontier) >= 2:
            # The fastest plan must not also be the cheapest one (a tradeoff exists).
            fastest = times.index(min(times))
            cheapest = money.index(min(money))
            assert fastest != cheapest or len(set(times)) == 1

    def test_sampling_library_precision_time_tradeoff(self, rng):
        from repro.plans.operators import OperatorLibrary

        query = QueryGenerator(rng=rng).generate(4, GraphShape.STAR)
        model = MultiObjectiveCostModel(
            query,
            metrics=("time", "precision_loss"),
            library=OperatorLibrary.sampling(sampling_rates=(1.0, 0.1)),
        )
        optimizer = RMQOptimizer(
            model, rng=random.Random(4), schedule=AlphaSchedule.constant(1.0)
        )
        frontier = optimizer.run(max_steps=25)
        assert frontier
        precision_losses = {round(plan.cost[1], 6) for plan in frontier}
        # Both exact (zero-loss) and sampled plans should appear on the frontier.
        assert len(precision_losses) >= 2
