"""Unit tests for repro.cost.vector."""

import pytest

from repro.cost.vector import (
    add_vectors,
    component_means,
    max_ratio,
    mean_relative_difference,
    scale_vector,
    validate_cost_vector,
)


class TestValidation:
    def test_valid_vector(self):
        validate_cost_vector((1.0, 2.0, 0.0))

    def test_empty_vector_rejected(self):
        with pytest.raises(ValueError):
            validate_cost_vector(())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            validate_cost_vector((1.0, -0.1))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            validate_cost_vector((float("nan"),))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            validate_cost_vector((1.0, 2.0), num_metrics=3)


class TestArithmetic:
    def test_add_vectors(self):
        assert add_vectors((1, 2), (3, 4), (5, 6)) == (9, 12)

    def test_add_requires_equal_length(self):
        with pytest.raises(ValueError):
            add_vectors((1, 2), (3,))

    def test_add_requires_at_least_one(self):
        with pytest.raises(ValueError):
            add_vectors()

    def test_scale(self):
        assert scale_vector((1.0, 2.0), 2.5) == (2.5, 5.0)

    def test_component_means(self):
        assert component_means([(1.0, 4.0), (3.0, 0.0)]) == (2.0, 2.0)

    def test_component_means_empty_rejected(self):
        with pytest.raises(ValueError):
            component_means([])

    def test_component_means_length_mismatch(self):
        with pytest.raises(ValueError):
            component_means([(1.0,), (1.0, 2.0)])


class TestRatios:
    def test_max_ratio_basic(self):
        assert max_ratio((2.0, 9.0), (1.0, 3.0)) == pytest.approx(3.0)

    def test_max_ratio_handles_zero_denominator(self):
        value = max_ratio((1.0,), (0.0,))
        assert value > 1e6  # floored division, very large but finite

    def test_max_ratio_zero_numerator(self):
        assert max_ratio((0.0,), (5.0,)) < 1.0

    def test_max_ratio_length_mismatch(self):
        with pytest.raises(ValueError):
            max_ratio((1.0,), (1.0, 2.0))

    def test_mean_relative_difference_sign(self):
        assert mean_relative_difference((2.0, 2.0), (1.0, 1.0)) == pytest.approx(1.0)
        assert mean_relative_difference((0.5, 0.5), (1.0, 1.0)) == pytest.approx(-0.5)
        assert mean_relative_difference((1.0, 1.0), (1.0, 1.0)) == pytest.approx(0.0)

    def test_mean_relative_difference_mixed(self):
        # +100% on the first metric, -50% on the second → +25% average.
        assert mean_relative_difference((2.0, 1.0), (1.0, 2.0)) == pytest.approx(0.25)

    def test_mean_relative_difference_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_relative_difference((1.0,), (1.0, 2.0))
