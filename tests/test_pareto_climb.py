"""Unit tests for repro.core.pareto_climb (Algorithm 2)."""

import pytest

from repro.core.pareto_climb import ClimbResult, ParetoClimber
from repro.core.random_plans import RandomPlanGenerator
from repro.pareto.dominance import dominates, strictly_dominates
from repro.plans.transformations import TransformationRules
from repro.plans.validation import validate_plan


@pytest.fixture
def climber(chain_model):
    return ParetoClimber(chain_model)


@pytest.fixture
def random_chain_plan(chain_model, rng):
    return RandomPlanGenerator(chain_model, rng).random_bushy_plan()


class TestParetoStep:
    def test_step_returns_plans_per_format(self, climber, random_chain_plan):
        result = climber.pareto_step(random_chain_plan)
        assert result
        for output_format, plan in result.items():
            assert plan.output_format is output_format
            assert plan.rel == random_chain_plan.rel

    def test_step_never_returns_dominated_plan_vs_input(self, climber, random_chain_plan):
        result = climber.pareto_step(random_chain_plan)
        same_format = result.get(random_chain_plan.output_format)
        if same_format is not None:
            assert not strictly_dominates(random_chain_plan.cost, same_format.cost)

    def test_step_counts_plans_built(self, chain_model, random_chain_plan):
        climber = ParetoClimber(chain_model)
        assert climber.plans_built == 0
        climber.pareto_step(random_chain_plan)
        assert climber.plans_built > 0

    def test_scan_step(self, chain_model):
        climber = ParetoClimber(chain_model)
        scan = chain_model.default_scan(0)
        result = climber.pareto_step(scan)
        assert all(not plan.is_join for plan in result.values())
        assert all(plan.rel == scan.rel for plan in result.values())


class TestParetoClimb:
    def test_climb_improves_or_keeps_cost(self, climber, random_chain_plan):
        result = climber.climb(random_chain_plan)
        assert isinstance(result, ClimbResult)
        assert dominates(result.plan.cost, random_chain_plan.cost) or not strictly_dominates(
            random_chain_plan.cost, result.plan.cost
        )

    def test_climb_result_is_valid_plan(self, climber, random_chain_plan, chain_query_4, chain_model):
        result = climber.climb(random_chain_plan)
        validate_plan(result.plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_local_optimum_has_no_strictly_dominating_neighbor_step(
        self, climber, random_chain_plan
    ):
        """After the climb, another ParetoStep must not strictly improve the plan."""
        result = climber.climb(random_chain_plan)
        another_step = climber.pareto_step(result.plan)
        for candidate in another_step.values():
            assert not strictly_dominates(candidate.cost, result.plan.cost)

    def test_climb_from_local_optimum_is_zero_steps(self, climber, random_chain_plan):
        first = climber.climb(random_chain_plan)
        second = climber.climb(first.plan)
        assert second.path_length == 0
        assert second.plan.cost == first.plan.cost

    def test_path_length_counts_strict_improvements(self, climber, random_chain_plan):
        result = climber.climb(random_chain_plan)
        assert result.path_length >= 0
        if result.path_length == 0:
            assert result.plan.cost == random_chain_plan.cost

    def test_max_steps_bound_respected(self, chain_model, random_chain_plan):
        climber = ParetoClimber(chain_model, max_steps=1)
        result = climber.climb(random_chain_plan)
        assert result.path_length <= 1

    def test_invalid_max_steps_rejected(self, chain_model):
        with pytest.raises(ValueError):
            ParetoClimber(chain_model, max_steps=0)

    def test_climb_on_many_random_starts(self, star_model, star_query_5, rng):
        generator = RandomPlanGenerator(star_model, rng)
        climber = ParetoClimber(star_model)
        for _ in range(10):
            start = generator.random_bushy_plan()
            result = climber.climb(start)
            assert dominates(result.plan.cost, start.cost)
            validate_plan(result.plan, star_query_5, star_model.library, star_model.num_metrics)

    def test_climb_reduces_cost_on_average(self, cycle_model, rng):
        """Climbing from random plans should usually find a strictly better plan."""
        generator = RandomPlanGenerator(cycle_model, rng)
        climber = ParetoClimber(cycle_model)
        improved = 0
        for _ in range(10):
            start = generator.random_bushy_plan()
            result = climber.climb(start)
            if strictly_dominates(result.plan.cost, start.cost):
                improved += 1
        assert improved >= 7

    def test_example1_single_metric_single_operator(self, minimal_model):
        """The paper's Example 1 setting: one metric, one operator, commutation only.

        The climb must terminate and never worsen the (scalar) cost.
        """
        rules = TransformationRules(enable_associativity=True, enable_exchange=True)
        climber = ParetoClimber(minimal_model, rules)
        generator = RandomPlanGenerator(minimal_model, __import__("random").Random(0))
        for _ in range(5):
            start = generator.random_bushy_plan()
            result = climber.climb(start)
            assert result.plan.cost[0] <= start.cost[0]


class TestClimbEfficiency:
    def test_simultaneous_subtree_improvements(self, chain_model):
        """A single ParetoStep can improve several independent sub-trees at once.

        Build a plan whose two sub-trees each use a sub-optimal scan operator;
        one step must already improve both (the resulting plan improves on a
        plan where only one sub-tree was fixed).
        """
        # index_scan on a large table is cheaper than seq_scan in this model.
        seq = chain_model.library.scan_operator("seq_scan")
        scan0 = chain_model.make_scan(0, seq)
        scan1 = chain_model.make_scan(1, seq)
        scan2 = chain_model.make_scan(2, seq)
        scan3 = chain_model.make_scan(3, seq)
        left = chain_model.default_join(scan0, scan1)
        right = chain_model.default_join(scan2, scan3)
        plan = chain_model.default_join(left, right)

        climber = ParetoClimber(chain_model)
        stepped = climber.pareto_step(plan)
        best = min(stepped.values(), key=lambda p: p.cost[0])
        # The time cost must improve by at least as much as the best
        # single-table scan improvement (both sides improved together).
        single_improvements = []
        for index in range(4):
            variants = [chain_model.make_scan(index, op) for op in chain_model.scan_operators(index)]
            best_scan = min(v.cost[0] for v in variants)
            seq_scan = chain_model.make_scan(index, seq).cost[0]
            single_improvements.append(seq_scan - best_scan)
        assert plan.cost[0] - best.cost[0] >= max(single_improvements) - 1e-9
