"""Tests for the TCP lease service (repro.dist.service).

The headline property mirrors ``tests/test_dist.py``: every service-backed
run — through dropped connections, half-written frames, worker death
between claim and result, duplicate and late completions — reduces to
output bit-identical to sequential ``run_scenario``.  On top of that the
service adds multi-tenant guarantees: concurrent clients lease zero
duplicate deterministic leaves, admission control bounds live jobs, and
heartbeat renewal keeps slow-but-healthy leases from being reclaimed.
"""

import contextlib
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.bench.runner import reduce_task_results, run_scenario
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.tasks import _execute_task_group, schedule_tasks
from repro.dist import TaskCache
from repro.dist.coordinator import Coordinator, LeaseValidationError
from repro.dist.protocol import FileLeaseTransport, init_workdir
from repro.dist.service import (
    KIND_BYTES,
    KIND_JSON,
    MAX_FRAME_BYTES,
    _HEADER,
    FrameError,
    RemoteLeaseTransport,
    ServiceBusyError,
    ServiceClient,
    connect,
    encode_frame,
    encode_json_frame,
    run_service_worker,
    start_service,
    submit_scenario,
)
from repro.dist.shm import SubsetEffects
from repro.dist.transport import ExponentialBackoff, LeaseRenewer
from repro.obs.metrics import Metrics
from repro.query.join_graph import GraphShape


@pytest.fixture(scope="module")
def step_spec():
    """Step-driven smoke spec with DP-reference leaves (all deterministic)."""
    return ScenarioSpec(
        name="service-smoke",
        description="lease service determinism smoke spec",
        graph_shapes=(GraphShape.CHAIN, GraphShape.STAR),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RandomSampling", "RMQ"),
        num_test_cases=2,
        step_checkpoints=(2, 4),
        reference_algorithm="DP(1.01)",
        seed=11,
        scale=ScenarioScale.SMOKE,
    )


@pytest.fixture(scope="module")
def sequential_result(step_spec):
    return run_scenario(step_spec, workers=1)


@contextlib.contextmanager
def service(**kwargs):
    """A service on an ephemeral port with an isolated metrics registry."""
    kwargs.setdefault("metrics", Metrics())
    handle = start_service(host="127.0.0.1", port=0, **kwargs)
    try:
        yield handle
    finally:
        handle.stop()


@contextlib.contextmanager
def worker_pool(address, workers=1, **kwargs):
    """Persistent attached workers, stopped (and joined) on exit."""
    stop = threading.Event()
    counters = {}

    def main():
        counters.update(
            run_service_worker(
                address, workers=workers, stop=stop, poll=0.02, poll_cap=0.2,
                **kwargs,
            )
        )

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    try:
        yield counters
    finally:
        stop.set()
        thread.join(timeout=30.0)
        assert not thread.is_alive()


def assert_bit_identical(step_spec, sequential_result, results):
    assert reduce_task_results(step_spec, results) == sequential_result.cells


# ---------------------------------------------------------------------------
# Frame codec and backoff/renewer primitives
# ---------------------------------------------------------------------------
class TestFramePrimitives:
    def test_frame_round_trip(self):
        frame = encode_frame(KIND_BYTES, b"abc")
        length, kind = _HEADER.unpack(frame[: _HEADER.size])
        assert (length, kind) == (3, KIND_BYTES)
        assert frame[_HEADER.size :] == b"abc"

    def test_json_frame_is_compact(self):
        frame = encode_json_frame({"type": "hello"})
        assert frame[_HEADER.size :] == b'{"type":"hello"}'

    def test_oversized_frame_refused_at_encode(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(KIND_JSON, b"\x00" * (MAX_FRAME_BYTES + 1))


class TestExponentialBackoff:
    def test_growth_is_capped(self):
        backoff = ExponentialBackoff(0.1, 1.0, jitter=0.0)
        delays = [backoff.next() for _ in range(6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_reset_returns_to_initial(self):
        backoff = ExponentialBackoff(0.1, 1.0, jitter=0.0)
        for _ in range(4):
            backoff.next()
        backoff.reset()
        assert backoff.next() == pytest.approx(0.1)

    def test_jitter_stays_within_band(self):
        backoff = ExponentialBackoff(0.5, 8.0, jitter=0.25)
        for _ in range(50):
            base = backoff.current
            delay = backoff.next()
            assert base * 0.75 <= delay <= base * 1.25

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(0.0, 1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(1.0, 0.5)


class TestLeaseRenewer:
    def test_counts_heartbeats_and_stops(self):
        beats = []
        with LeaseRenewer(lambda: beats.append(1) or True, 0.02) as renewer:
            time.sleep(0.15)
        assert renewer.renewals == len(beats) >= 2
        settled = renewer.renewals
        time.sleep(0.06)
        assert renewer.renewals == settled  # no beats after stop

    def test_stops_when_renewal_is_refused(self):
        calls = []
        renewer = LeaseRenewer(lambda: calls.append(1) or False, 0.01)
        renewer.start()
        time.sleep(0.1)
        renewer.stop()
        assert len(calls) == 1  # a False heartbeat ends the thread


# ---------------------------------------------------------------------------
# Bit-identity of service-backed runs
# ---------------------------------------------------------------------------
class TestServiceBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential(self, step_spec, sequential_result, workers):
        with service() as handle:
            with worker_pool(handle.address, workers=workers) as counters:
                results, info = submit_scenario(
                    handle.address, step_spec, timeout=60.0
                )
            assert_bit_identical(step_spec, sequential_result, results)
            assert info["scheduled"] == len(schedule_tasks(step_spec))
            assert info["stats"]["completed"] == info["scheduled"]
            assert counters["leases"] >= 1

    def test_results_arrive_in_schedule_order(self, step_spec, sequential_result):
        with service() as handle:
            with worker_pool(handle.address, workers=2):
                results, _ = submit_scenario(
                    handle.address, step_spec, timeout=60.0
                )
        assert [r.task for r in results] == list(schedule_tasks(step_spec))


# ---------------------------------------------------------------------------
# Multi-tenant dedup: concurrent clients share deterministic leaves
# ---------------------------------------------------------------------------
class TestMultiTenantDedup:
    def test_second_client_leases_zero_tasks(self, step_spec, sequential_result):
        with service() as handle:
            with worker_pool(handle.address, workers=2):
                first, info1 = submit_scenario(
                    handle.address, step_spec, timeout=60.0, client_id="tenant-a"
                )
                second, info2 = submit_scenario(
                    handle.address, step_spec, timeout=60.0, client_id="tenant-b"
                )
            assert_bit_identical(step_spec, sequential_result, first)
            assert_bit_identical(step_spec, sequential_result, second)
            total = len(schedule_tasks(step_spec))
            assert info1["scheduled"] == total
            # Every leaf of the repeat tenant is served from the session
            # memo: zero leases, zero executions.
            assert info2["scheduled"] == 0
            assert info2["injected"] == total
            with ServiceClient(handle.address) as client:
                stats = client.server_stats()
            assert stats["session_results"] == total

    def test_concurrent_clients_execute_each_leaf_once(
        self, step_spec, sequential_result
    ):
        metrics = Metrics()
        with service(metrics=metrics) as handle:
            with worker_pool(handle.address, workers=2):
                outputs = {}

                def tenant(name):
                    outputs[name] = submit_scenario(
                        handle.address, step_spec, timeout=60.0, client_id=name
                    )

                threads = [
                    threading.Thread(target=tenant, args=(f"tenant-{i}",))
                    for i in range(3)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60.0)
            assert len(outputs) == 3
            total = len(schedule_tasks(step_spec))
            for results, _ in outputs.values():
                assert_bit_identical(step_spec, sequential_result, results)
            # Across all tenants each deterministic leaf was scheduled for
            # execution exactly once; overlapping submissions deferred to
            # the in-flight owner instead of re-leasing.
            scheduled = sum(info["scheduled"] for _, info in outputs.values())
            shared = sum(
                info["deferred"] + info["injected"]
                for _, info in outputs.values()
            )
            assert scheduled == total
            assert shared == 2 * total
            assert metrics.counter("coordinator.completed.tcp") == total

    def test_dead_owner_promotes_deferred_to_survivor(
        self, step_spec, sequential_result
    ):
        # Tenant A submits and dies before any lease completes; tenant B's
        # deferred leaves (waiting on A's in-flight executions) must be
        # promoted into B's own queue, not starve.
        with service() as handle:
            client_a = ServiceClient(handle.address, client_id="doomed")
            client_a.submit(step_spec, timeout=10.0)
            with ServiceClient(handle.address, client_id="survivor") as client_b:
                info_b = client_b.submit(step_spec, timeout=10.0)
                assert info_b["scheduled"] == 0
                assert info_b["deferred"] == len(schedule_tasks(step_spec))
                client_a.close()  # owner dies; B inherits the work
                with worker_pool(handle.address, workers=2):
                    results, _ = client_b.wait(info_b["job"], timeout=60.0)
            assert_bit_identical(step_spec, sequential_result, results)


# ---------------------------------------------------------------------------
# Transport fault injection
# ---------------------------------------------------------------------------
class TestTransportFaults:
    def test_dropped_connection_mid_lease(self, step_spec, sequential_result):
        with service(lease_timeout=30.0) as handle:
            with ServiceClient(handle.address) as client:
                info = client.submit(step_spec, timeout=10.0)
                # A worker claims a lease, then its connection drops hard.
                rogue = RemoteLeaseTransport(handle.address, worker_id="rogue")
                lease = rogue.request_lease("rogue")
                assert lease is not None
                rogue.close()
                # The server fails the held lease immediately (no 30s
                # timeout wait) and requeues it for healthy workers.
                with worker_pool(handle.address, workers=2):
                    results, stats = client.wait(info["job"], timeout=60.0)
            assert_bit_identical(step_spec, sequential_result, results)
            assert stats["failed_leases"] >= 1
            assert stats["reassignments"] >= 1

    def test_worker_death_between_claim_and_result(
        self, step_spec, sequential_result
    ):
        died = threading.Event()

        def die_once(lease):
            if not died.is_set():
                died.set()
                raise RuntimeError("simulated worker death")

        with service(lease_timeout=30.0) as handle:
            with ServiceClient(handle.address) as client:
                info = client.submit(step_spec, timeout=10.0)
                with worker_pool(
                    handle.address, workers=2, on_lease=die_once
                ) as counters:
                    results, stats = client.wait(info["job"], timeout=60.0)
            assert counters["died"] == 1
            assert stats["reassignments"] >= 1
            assert_bit_identical(step_spec, sequential_result, results)

    def test_duplicate_and_late_completions(self, step_spec, sequential_result):
        with service(lease_timeout=0.4) as handle:
            with ServiceClient(handle.address) as client:
                info = client.submit(step_spec, timeout=10.0)
                slow = RemoteLeaseTransport(handle.address, worker_id="slow")
                lease = slow.request_lease("slow")
                assert lease is not None
                spec = slow.spec_for_lease(lease)
                payload = _execute_task_group(spec, list(lease.tasks))
                # A second worker drains every *other* group properly...
                fast = RemoteLeaseTransport(handle.address, worker_id="fast")
                while (other := fast.request_lease("fast")) is not None:
                    fast.complete_lease(
                        other.lease_id,
                        _execute_task_group(
                            fast.spec_for_lease(other), list(other.tasks)
                        ),
                    )
                # ...then sits out the lease timeout so the sweeper
                # reclaims the held group and hands it to the re-claimant.
                deadline = time.monotonic() + 10.0
                release = None
                while release is None and time.monotonic() < deadline:
                    time.sleep(0.1)
                    release = fast.request_lease("fast")
                assert release is not None
                assert set(release.tasks) == set(lease.tasks)
                # The original worker's completion is *late* but first:
                # accepted.  The re-claimant's is a duplicate: dropped.
                assert slow.complete_lease(lease.lease_id, payload) is True
                assert fast.complete_lease(release.lease_id, payload) is False
                slow.close()
                results, stats = client.wait(info["job"], timeout=60.0)
                fast.close()
            assert stats["late_completions"] >= 1
            assert stats["duplicates"] >= 1
            assert_bit_identical(step_spec, sequential_result, results)

    def test_corrupt_completion_rejected_over_tcp(self, step_spec):
        with service() as handle:
            with ServiceClient(handle.address) as client:
                client.submit(step_spec, timeout=10.0)
                worker = RemoteLeaseTransport(handle.address, worker_id="liar")
                lease = worker.request_lease("liar")
                assert lease is not None
                spec = worker.spec_for_lease(lease)
                # Results that do not cover the leased tasks: the server
                # must reject the completion and keep the lease requeued.
                wrong = _execute_task_group(spec, [lease.tasks[0]])
                with pytest.raises(LeaseValidationError):
                    worker.complete_lease(lease.lease_id, wrong[:1] * 2)
                worker.close()

    def test_half_written_and_garbage_frames(self, step_spec):
        metrics = Metrics()
        with service(metrics=metrics) as handle:
            # A connection that dies mid-header.
            raw = socket.create_connection(handle.address, timeout=5.0)
            raw.sendall(_HEADER.pack(100, KIND_JSON)[:3])
            raw.close()
            # A full frame of non-JSON bytes after a valid handshake.
            frames = connect(handle.address)
            frames.send_raw(encode_frame(KIND_JSON, b"\xff\xfenot json"))
            kind, payload = frames._recv_frame()
            assert kind == KIND_JSON and b"bad JSON" in payload
            frames.close()
            # A bytes frame where a JSON frame is required.
            frames = connect(handle.address)
            frames.send_raw(encode_frame(KIND_BYTES, b"zzz"))
            kind, payload = frames._recv_frame()
            assert b"expected a JSON frame" in payload
            frames.close()
            # A header announcing an over-cap payload (never sent).
            frames = connect(handle.address)
            frames.send_raw(_HEADER.pack(MAX_FRAME_BYTES + 1, KIND_JSON))
            kind, payload = frames._recv_frame()
            assert b"bad frame" in payload
            frames.close()
            # An unknown frame kind.
            frames = connect(handle.address)
            frames.send_raw(struct.pack(">IB", 1, 7) + b"x")
            kind, payload = frames._recv_frame()
            assert b"bad frame" in payload
            frames.close()
            assert metrics.counter("service.frame_errors") >= 4
            # The server survived all of it: a real submission still works.
            with ServiceClient(handle.address) as client:
                info = client.submit(step_spec, timeout=10.0)
                assert info["scheduled"] == len(schedule_tasks(step_spec))


# ---------------------------------------------------------------------------
# Heartbeat renewal
# ---------------------------------------------------------------------------
class TestHeartbeatRenewal:
    def test_renewal_outlives_short_lease_timeout(
        self, step_spec, sequential_result, monkeypatch
    ):
        # Make every lease slower than the lease timeout: without
        # heartbeats each one would be reclaimed and re-executed.
        import repro.dist.service as service_module

        real = service_module._execute_task_group

        def slow_execute(spec, tasks):
            time.sleep(0.5)
            return real(spec, tasks)

        monkeypatch.setattr(service_module, "_execute_task_group", slow_execute)
        with service(lease_timeout=0.3) as handle:
            with worker_pool(
                handle.address, workers=2, renew_interval=0.05
            ) as counters:
                results, info = submit_scenario(
                    handle.address,
                    step_spec,
                    granularity="cell",
                    timeout=60.0,
                )
            assert_bit_identical(step_spec, sequential_result, results)
            assert counters["renewals"] >= 1
            assert info["stats"]["renewals"] >= 1
            assert info["stats"]["reassignments"] == 0

    def test_renew_rpc_refuses_unknown_lease(self, step_spec):
        with service() as handle:
            with ServiceClient(handle.address) as client:
                info = client.submit(step_spec, timeout=10.0)
                worker = RemoteLeaseTransport(handle.address, worker_id="w")
                lease = worker.request_lease("w")
                assert worker.renew_lease(lease.lease_id) is True
                assert (
                    worker.renew_lease(f"{info['job']}/lease-bogus") is False
                )
                worker.close()


# ---------------------------------------------------------------------------
# Admission control and backpressure
# ---------------------------------------------------------------------------
class TestBackpressure:
    def test_busy_server_rejects_with_retry_hint(self, step_spec):
        with service(max_jobs=1, retry_after=0.07) as handle:
            with ServiceClient(handle.address, client_id="a") as first:
                first.submit(step_spec, timeout=10.0)
                with ServiceClient(handle.address, client_id="b") as second:
                    reply, _ = second._frames.request(
                        {"type": "submit", "spec": step_spec.to_json_dict()}
                    )
                    assert reply["type"] == "rejected"
                    assert reply["reason"] == "busy"
                    assert reply["retry_after"] == pytest.approx(0.07)
                    with pytest.raises(ServiceBusyError):
                        second.submit(step_spec, timeout=0.3)

    def test_per_client_job_cap(self, step_spec):
        with service(max_jobs=64, max_jobs_per_client=1) as handle:
            with ServiceClient(handle.address, client_id="greedy") as client:
                client.submit(step_spec, timeout=10.0)
                reply, _ = client._frames.request(
                    {"type": "submit", "spec": step_spec.to_json_dict()}
                )
                assert reply["type"] == "rejected"
                assert reply["reason"] == "client_busy"

    def test_submit_retry_succeeds_once_capacity_frees(
        self, step_spec, sequential_result
    ):
        with service(max_jobs=1) as handle:
            with worker_pool(handle.address, workers=2):
                order = []

                def tenant(name):
                    results, _ = submit_scenario(
                        handle.address, step_spec, timeout=60.0, client_id=name
                    )
                    order.append((name, results))

                threads = [
                    threading.Thread(target=tenant, args=(f"t{i}",))
                    for i in range(3)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60.0)
            assert len(order) == 3
            for _, results in order:
                assert_bit_identical(step_spec, sequential_result, results)


# ---------------------------------------------------------------------------
# Shared cache: JSON results across restarts, bytes RPC for packed effects
# ---------------------------------------------------------------------------
class TestSharedCache:
    def test_warm_cache_run_leases_nothing(
        self, step_spec, sequential_result, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        with service(cache=TaskCache(cache_dir)) as handle:
            with worker_pool(handle.address, workers=2):
                _, info1 = submit_scenario(
                    handle.address, step_spec, timeout=60.0
                )
            assert info1["cache_hits"] == 0
        # A *new* service process over the same cache directory: every
        # deterministic leaf is a cache hit, no workers needed at all.
        with service(cache=TaskCache(cache_dir)) as handle:
            results, info2 = submit_scenario(
                handle.address, step_spec, timeout=60.0
            )
            assert info2["cache_hits"] == len(schedule_tasks(step_spec))
            assert info2["scheduled"] == 0
            assert_bit_identical(step_spec, sequential_result, results)

    def test_packed_effects_bytes_round_trip(self, tmp_path):
        effects = SubsetEffects.from_split_effects(
            [(3, [(1, 2, 0, 8.0, (1.5, float("inf")))]), (2, [])],
            num_metrics=2,
        )
        payload = effects.to_bytes()
        with service(cache=TaskCache(str(tmp_path / "cache"))) as handle:
            with ServiceClient(handle.address) as client:
                assert client.cache_get_bytes("dp:deadbeef") is None
                assert client.cache_put_bytes("dp:deadbeef", payload) is True
                fetched = client.cache_get_bytes("dp:deadbeef")
        assert fetched == payload
        decoded = SubsetEffects.from_bytes(fetched, num_metrics=2)
        assert np.array_equal(decoded.counts, effects.counts)
        assert np.array_equal(decoded.rows, effects.rows)

    def test_bytes_rpc_without_cache_is_a_miss(self):
        with service() as handle:
            with ServiceClient(handle.address) as client:
                assert client.cache_put_bytes("k", b"v") is False
                assert client.cache_get_bytes("k") is None


# ---------------------------------------------------------------------------
# File transport: claim renewal and backoff polling
# ---------------------------------------------------------------------------
class TestFileTransportRenewal:
    def test_renewed_claim_is_never_stolen(self, step_spec, tmp_path):
        workdir = str(tmp_path / "work")
        init_workdir(workdir, step_spec, lease_timeout=10.0)
        clock = FakeClock(1000.0)
        holder = FileLeaseTransport(workdir, worker_id="holder", clock=clock)
        thief = FileLeaseTransport(workdir, worker_id="thief", clock=clock)
        lease = holder.request_lease("holder")
        assert lease is not None
        batch = lease.lease_id.rsplit(".", 1)[0]
        # Renew at 60% of the timeout, then step past the *original*
        # deadline: the refreshed claim must hold.
        clock.advance(6.0)
        assert holder.renew_lease(lease.lease_id) is True
        clock.advance(6.0)
        stolen = thief.request_lease("thief")
        assert stolen is None or not stolen.lease_id.startswith(batch + ".")
        # Without further renewals the refreshed claim expires too.
        clock.advance(10.0)
        restolen = thief.request_lease("thief")
        assert restolen is not None
        assert holder.renew_lease(lease.lease_id) is False  # now thief's

    def test_stale_lease_id_cannot_renew(self, step_spec, tmp_path):
        workdir = str(tmp_path / "work")
        init_workdir(workdir, step_spec, lease_timeout=10.0)
        transport = FileLeaseTransport(workdir, worker_id="w")
        with pytest.raises(LeaseValidationError):
            transport.fail_lease("queue-00000.9")
        assert transport.renew_lease("queue-00000.9") is False


class FakeClock:
    """Settable clock for claim-expiry tests (file protocol uses time.time)."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Coordinator primitives behind the router: deferred / inject / renew
# ---------------------------------------------------------------------------
class TestCoordinatorDeferredAndRenew:
    def test_deferred_tasks_are_withheld_then_injected(self, step_spec):
        import repro.bench.tasks as tasks_module

        tasks = schedule_tasks(step_spec)
        withheld = tasks[0]
        coordinator = Coordinator(step_spec, deferred=[withheld])
        assert withheld in coordinator.deferred_tasks
        leased = []
        while (lease := coordinator.request_lease("w")) is not None:
            leased.extend(lease.tasks)
            coordinator.complete_lease(
                lease.lease_id,
                _execute_task_group(step_spec, list(lease.tasks)),
            )
        assert withheld not in leased
        assert not coordinator.done
        result = tasks_module.execute_task(step_spec, withheld)
        assert coordinator.inject_result(withheld, result) is True
        assert coordinator.inject_result(withheld, result) is False  # dup
        assert coordinator.done
        assert coordinator.stats["injected"] == 1

    def test_inject_validates_task_identity(self, step_spec):
        import repro.bench.tasks as tasks_module

        tasks = schedule_tasks(step_spec)
        coordinator = Coordinator(step_spec, deferred=[tasks[0]])
        foreign = tasks_module.execute_task(step_spec, tasks[1])
        with pytest.raises(LeaseValidationError):
            coordinator.inject_result(tasks[0], foreign)

    def test_requeue_deferred_promotes_to_queue(self, step_spec):
        tasks = schedule_tasks(step_spec)
        coordinator = Coordinator(step_spec, deferred=list(tasks))
        assert coordinator.request_lease("w") is None  # everything withheld
        assert coordinator.requeue_deferred([tasks[0], tasks[1]]) == 2
        granted = coordinator.request_lease("w")
        assert granted is not None
        assert set(granted.tasks) <= {tasks[0], tasks[1]}

    def test_renew_extends_deadline(self, step_spec):
        clock = FakeClock()
        coordinator = Coordinator(step_spec, lease_timeout=10.0, clock=clock)
        lease = coordinator.request_lease("w")
        clock.advance(9.0)
        assert coordinator.renew_lease(lease.lease_id) is True
        clock.advance(9.0)  # past the original deadline, inside the renewed
        assert coordinator.reclaim_expired() == 0
        clock.advance(2.0)
        assert coordinator.reclaim_expired() == 1
        assert coordinator.renew_lease(lease.lease_id) is False
        assert coordinator.stats["renewals"] == 1
