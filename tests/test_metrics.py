"""Unit tests for repro.cost.metrics."""

import pytest

from repro.cost.metrics import (
    PAPER_METRICS,
    BufferMetric,
    CostModelConfig,
    DiskMetric,
    EnergyMetric,
    MonetaryMetric,
    PrecisionLossMetric,
    TimeMetric,
    available_metric_names,
    metric_by_name,
)
from repro.plans.operators import (
    DataFormat,
    JoinAlgorithm,
    JoinOperator,
    ScanAlgorithm,
    ScanOperator,
)
from repro.query.table import Table

CONFIG = CostModelConfig()


@pytest.fixture
def big_table():
    return Table(index=0, name="big", cardinality=100_000)


@pytest.fixture
def small_table():
    return Table(index=1, name="small", cardinality=100)


def make_scan_plan(model, table_index=0):
    return model.default_scan(table_index)


class TestRegistry:
    def test_paper_metrics_registered(self):
        for name in PAPER_METRICS:
            assert metric_by_name(name).name == name

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            metric_by_name("latency_p99")

    def test_available_names_cover_extensions(self):
        names = available_metric_names()
        assert "monetary" in names
        assert "energy" in names
        assert "precision_loss" in names


class TestConfig:
    def test_pages_conversion(self):
        assert CONFIG.pages(0.0) == 1.0  # floor at one page
        assert CONFIG.pages(1e6) == pytest.approx(1e6 * 100 / 8192)


class TestTimeMetric:
    def test_scan_cost_grows_with_table_size(self, big_table, small_table):
        metric = TimeMetric()
        op = ScanOperator("seq")
        big = metric.scan_cost(big_table, op, big_table.cardinality, CONFIG)
        small = metric.scan_cost(small_table, op, small_table.cardinality, CONFIG)
        assert big > small > 0

    def test_parallel_scan_is_faster(self, big_table):
        metric = TimeMetric()
        serial = ScanOperator("s1")
        parallel = ScanOperator("s4", parallelism=4)
        assert metric.scan_cost(big_table, parallel, big_table.cardinality, CONFIG) < (
            metric.scan_cost(big_table, serial, big_table.cardinality, CONFIG)
        )

    def test_index_scan_cheaper_than_full_scan_for_large_table(self, big_table):
        metric = TimeMetric()
        full = ScanOperator("seq", ScanAlgorithm.FULL)
        index = ScanOperator("idx", ScanAlgorithm.INDEX)
        assert metric.scan_cost(big_table, index, big_table.cardinality, CONFIG) < (
            metric.scan_cost(big_table, full, big_table.cardinality, CONFIG)
        )

    def test_join_algorithm_ordering(self, chain_model):
        # For sizeable inputs, hash join should beat block-nested-loop with a
        # small memory budget, which should beat tuple nested loop.
        metric = TimeMetric()
        outer = chain_model.default_scan(1)  # 10,000 rows
        inner = chain_model.default_scan(3)  # 2,000 rows
        output = 1_000.0
        hash_cost = metric.join_cost(
            outer, inner, JoinOperator("h", JoinAlgorithm.HASH, memory_pages=1024), output, CONFIG
        )
        bnl_cost = metric.join_cost(
            outer,
            inner,
            JoinOperator("b", JoinAlgorithm.BLOCK_NESTED_LOOP, memory_pages=2),
            output,
            CONFIG,
        )
        nl_cost = metric.join_cost(
            outer, inner, JoinOperator("n", JoinAlgorithm.NESTED_LOOP), output, CONFIG
        )
        assert hash_cost < bnl_cost < nl_cost

    def test_materialized_output_costs_more(self, chain_model):
        metric = TimeMetric()
        outer = chain_model.default_scan(1)
        inner = chain_model.default_scan(3)
        pipelined = JoinOperator("p", JoinAlgorithm.HASH, DataFormat.PIPELINED)
        materialized = JoinOperator("m", JoinAlgorithm.HASH, DataFormat.MATERIALIZED)
        output = 50_000.0
        assert metric.join_cost(outer, inner, materialized, output, CONFIG) > (
            metric.join_cost(outer, inner, pipelined, output, CONFIG)
        )

    def test_hash_join_degrades_when_memory_too_small(self, chain_model):
        metric = TimeMetric()
        outer = chain_model.default_scan(1)
        inner = chain_model.default_scan(3)
        roomy = JoinOperator("roomy", JoinAlgorithm.HASH, memory_pages=10_000)
        tight = JoinOperator("tight", JoinAlgorithm.HASH, memory_pages=1)
        output = 1_000.0
        assert metric.join_cost(outer, inner, tight, output, CONFIG) > (
            metric.join_cost(outer, inner, roomy, output, CONFIG)
        )


class TestBufferMetric:
    def test_hash_join_buffer_tracks_build_side(self, chain_model):
        metric = BufferMetric()
        outer = chain_model.default_scan(1)
        small_inner = chain_model.default_scan(0)  # 100 rows
        large_inner = chain_model.default_scan(3)  # 2,000 rows
        op = JoinOperator("h", JoinAlgorithm.HASH, memory_pages=100_000)
        assert metric.join_cost(outer, large_inner, op, 1.0, CONFIG) > (
            metric.join_cost(outer, small_inner, op, 1.0, CONFIG)
        )

    def test_bnl_buffer_is_memory_budget(self, chain_model):
        metric = BufferMetric()
        outer = chain_model.default_scan(1)
        inner = chain_model.default_scan(0)
        small = JoinOperator("b8", JoinAlgorithm.BLOCK_NESTED_LOOP, memory_pages=8)
        large = JoinOperator("b128", JoinAlgorithm.BLOCK_NESTED_LOOP, memory_pages=128)
        assert metric.join_cost(outer, inner, small, 1.0, CONFIG) == 8.0
        assert metric.join_cost(outer, inner, large, 1.0, CONFIG) == 128.0

    def test_scan_buffer_is_small_constant(self, big_table):
        metric = BufferMetric()
        assert metric.scan_cost(big_table, ScanOperator("s"), 1.0, CONFIG) == 1.0


class TestDiskMetric:
    def test_pipelined_scan_has_zero_disk(self, big_table):
        metric = DiskMetric()
        assert metric.scan_cost(big_table, ScanOperator("s"), 1e5, CONFIG) == 0.0

    def test_materialized_scan_uses_disk(self, big_table):
        metric = DiskMetric()
        op = ScanOperator("s", output_format=DataFormat.MATERIALIZED)
        assert metric.scan_cost(big_table, op, 1e5, CONFIG) > 0.0

    def test_sort_merge_spills_when_memory_small(self, chain_model):
        metric = DiskMetric()
        outer = chain_model.default_scan(1)
        inner = chain_model.default_scan(3)
        tight = JoinOperator("sm", JoinAlgorithm.SORT_MERGE, memory_pages=1)
        roomy = JoinOperator("sm2", JoinAlgorithm.SORT_MERGE, memory_pages=1_000_000)
        assert metric.join_cost(outer, inner, tight, 1.0, CONFIG) > 0.0
        assert metric.join_cost(outer, inner, roomy, 1.0, CONFIG) == 0.0


class TestExtensionMetrics:
    def test_monetary_cost_grows_with_parallelism_overhead(self, big_table):
        metric = MonetaryMetric()
        serial = ScanOperator("s1", parallelism=1)
        parallel = ScanOperator("s8", parallelism=8)
        serial_cost = metric.scan_cost(big_table, serial, 1.0, CONFIG)
        parallel_cost = metric.scan_cost(big_table, parallel, 1.0, CONFIG)
        assert parallel_cost > serial_cost

    def test_parallelism_trades_time_for_money(self, big_table):
        time_metric, money_metric = TimeMetric(), MonetaryMetric()
        serial = ScanOperator("s1", parallelism=1)
        parallel = ScanOperator("s8", parallelism=8)
        assert time_metric.scan_cost(big_table, parallel, 1.0, CONFIG) < (
            time_metric.scan_cost(big_table, serial, 1.0, CONFIG)
        )
        assert money_metric.scan_cost(big_table, parallel, 1.0, CONFIG) > (
            money_metric.scan_cost(big_table, serial, 1.0, CONFIG)
        )

    def test_energy_proportional_to_work(self, chain_model):
        metric = EnergyMetric()
        outer = chain_model.default_scan(1)
        inner = chain_model.default_scan(3)
        op = JoinOperator("h", JoinAlgorithm.HASH)
        assert metric.join_cost(outer, inner, op, 1.0, CONFIG) > 0.0

    def test_precision_loss_only_from_sampling(self, big_table, chain_model):
        metric = PrecisionLossMetric()
        full = ScanOperator("full", sampling_rate=1.0)
        sampled = ScanOperator("sample", ScanAlgorithm.SAMPLE, sampling_rate=0.2)
        assert metric.scan_cost(big_table, full, 1.0, CONFIG) == 0.0
        assert metric.scan_cost(big_table, sampled, 1.0, CONFIG) == pytest.approx(0.8)
        outer = chain_model.default_scan(0)
        inner = chain_model.default_scan(1)
        op = JoinOperator("h", JoinAlgorithm.HASH)
        assert metric.join_cost(outer, inner, op, 1.0, CONFIG) == 0.0


class TestNonNegativity:
    @pytest.mark.parametrize("name", list(available_metric_names()))
    def test_all_metrics_non_negative(self, name, chain_model, big_table):
        metric = metric_by_name(name)
        scan_cost = metric.scan_cost(big_table, ScanOperator("s"), 100.0, CONFIG)
        assert scan_cost >= 0.0
        outer = chain_model.default_scan(0)
        inner = chain_model.default_scan(1)
        for algorithm in JoinAlgorithm:
            op = JoinOperator("op", algorithm)
            assert metric.join_cost(outer, inner, op, 10.0, CONFIG) >= 0.0
