"""Unit tests for repro.core.plan_cache."""

import pytest

from repro.core.plan_cache import PlanCache
from repro.pareto.dominance import approx_dominates, strictly_dominates


@pytest.fixture
def cache():
    return PlanCache()


@pytest.fixture
def scan_variants(chain_model):
    return [chain_model.make_scan(0, op) for op in chain_model.scan_operators(0)]


class TestBasicOperations:
    def test_empty_cache(self, cache):
        assert len(cache) == 0
        assert cache.total_plans == 0
        assert cache.plans(frozenset({0})) == []
        assert frozenset({0}) not in cache

    def test_insert_and_retrieve(self, cache, chain_model):
        scan = chain_model.default_scan(0)
        assert cache.insert(scan)
        assert cache.plans({0}) == [scan]
        assert frozenset({0}) in cache
        assert cache.size_of({0}) == 1

    def test_plans_keyed_by_rel(self, cache, chain_model):
        scan0 = chain_model.default_scan(0)
        scan1 = chain_model.default_scan(1)
        cache.insert(scan0)
        cache.insert(scan1)
        assert cache.plans({0}) == [scan0]
        assert cache.plans({1}) == [scan1]
        assert len(cache) == 2
        assert set(cache.table_sets()) == {frozenset({0}), frozenset({1})}

    def test_clear(self, cache, chain_model):
        cache.insert(chain_model.default_scan(0))
        cache.clear()
        assert len(cache) == 0

    def test_contains_non_set_object(self, cache):
        assert "not a set" not in cache

    def test_invalid_alpha_rejected(self, cache, chain_model):
        with pytest.raises(ValueError):
            cache.insert(chain_model.default_scan(0), alpha=0.5)

    def test_frontier_costs(self, cache, scan_variants):
        cache.insert_all(scan_variants)
        costs = cache.frontier_costs({0})
        assert all(isinstance(cost, tuple) for cost in costs)


class TestPruning:
    def test_dominated_same_format_plan_rejected(self, cache, chain_model):
        # A good join order: (t0 ⋈ t1) ⋈ t2 follows the chain predicates.
        good = chain_model.default_join(
            chain_model.default_join(
                chain_model.default_scan(0), chain_model.default_scan(1)
            ),
            chain_model.default_scan(2),
        )
        # A bad join order for the same table set: the cross product t0 × t2
        # first, which inflates every cost metric.
        bad = chain_model.default_join(
            chain_model.default_join(
                chain_model.default_scan(0), chain_model.default_scan(2)
            ),
            chain_model.default_scan(1),
        )
        assert good.output_format is bad.output_format
        assert cache.insert(good) is True
        assert cache.insert(bad) is False
        assert cache.plans(good.rel) == [good]

    def test_insert_evicts_dominated_entries(self, cache, chain_model):
        scans = [chain_model.make_scan(1, op) for op in chain_model.scan_operators(1)]
        same_format = [s for s in scans if s.output_format is scans[0].output_format]
        if len(same_format) >= 2:
            worse = max(same_format, key=lambda p: p.cost[0])
            better = min(same_format, key=lambda p: p.cost[0])
            cache.insert(worse)
            cache.insert(better)
            kept = cache.plans({1})
            if strictly_dominates(better.cost, worse.cost):
                assert worse not in kept

    def test_different_output_formats_kept_separately(self, cache, chain_model):
        scans = [chain_model.make_scan(1, op) for op in chain_model.scan_operators(1)]
        formats = {s.output_format for s in scans}
        cache.insert_all(scans)
        kept_formats = {p.output_format for p in cache.plans({1})}
        assert kept_formats == formats

    def test_alpha_pruning_rejects_near_duplicates(self, cache, chain_model):
        variants = [chain_model.make_scan(1, op) for op in chain_model.scan_operators(1)]
        kept_exact = PlanCache()
        kept_exact.insert_all(variants, alpha=1.0)
        kept_coarse = PlanCache()
        kept_coarse.insert_all(variants, alpha=1e6)
        assert kept_coarse.size_of({1}) <= kept_exact.size_of({1})

    def test_cache_invariant_no_mutual_domination(self, cache, cycle_model, rng):
        """No cached plan strictly dominates another cached plan of the same format."""
        from repro.core.random_plans import RandomPlanGenerator

        generator = RandomPlanGenerator(cycle_model, rng)
        for _ in range(40):
            plan = generator.random_bushy_plan()
            cache.insert(plan, alpha=1.0)
        plans = cache.plans(cycle_model.query.relations)
        for first in plans:
            for second in plans:
                if first is second or first.output_format is not second.output_format:
                    continue
                assert not strictly_dominates(first.cost, second.cost) or (
                    first.cost == second.cost
                )

    def test_alpha_cache_covers_all_inserted_plans(self, cycle_model, rng):
        """Every rejected plan must be alpha-covered by some cached plan."""
        from repro.core.random_plans import RandomPlanGenerator

        alpha = 4.0
        cache = PlanCache()
        generator = RandomPlanGenerator(cycle_model, rng)
        plans = [generator.random_bushy_plan() for _ in range(40)]
        for plan in plans:
            cache.insert(plan, alpha=alpha)
        cached = cache.plans(cycle_model.query.relations)
        for plan in plans:
            same_format = [p for p in cached if p.output_format is plan.output_format]
            assert any(
                approx_dominates(entry.cost, plan.cost, alpha) for entry in same_format
            ), "an inserted plan is neither cached nor alpha-covered"

    def test_rejected_insert_returns_false(self, cache, chain_model):
        scan = chain_model.default_scan(0)
        assert cache.insert(scan) is True
        assert cache.insert(scan, alpha=1.0) is False

    def test_insert_all_returns_kept_count(self, cache, scan_variants):
        kept = cache.insert_all(scan_variants)
        assert kept == cache.total_plans
