"""Unit tests for repro.pareto.frontier."""

import pytest

from repro.pareto.dominance import dominates
from repro.pareto.frontier import ParetoFrontier, pareto_filter


class TestParetoFrontierExact:
    def test_insert_non_dominated(self):
        frontier = ParetoFrontier()
        assert frontier.insert((1.0, 5.0))
        assert frontier.insert((5.0, 1.0))
        assert len(frontier) == 2

    def test_dominated_insert_rejected(self):
        frontier = ParetoFrontier()
        frontier.insert((1.0, 1.0))
        assert not frontier.insert((2.0, 2.0))
        assert len(frontier) == 1

    def test_insert_evicts_dominated(self):
        frontier = ParetoFrontier()
        frontier.insert((2.0, 2.0))
        frontier.insert((3.0, 1.0))
        assert frontier.insert((1.0, 1.0))
        assert frontier.items() == [(1.0, 1.0)]

    def test_duplicate_cost_rejected(self):
        frontier = ParetoFrontier()
        frontier.insert((1.0, 2.0))
        assert not frontier.insert((1.0, 2.0))
        assert len(frontier) == 1

    def test_insert_all_counts(self):
        frontier = ParetoFrontier()
        kept = frontier.insert_all([(1.0, 5.0), (5.0, 1.0), (6.0, 6.0)])
        assert kept == 2

    def test_clear_and_bool(self):
        frontier = ParetoFrontier()
        assert not frontier
        frontier.insert((1.0,))
        assert frontier
        frontier.clear()
        assert len(frontier) == 0

    def test_iteration(self):
        frontier = ParetoFrontier()
        frontier.insert((1.0, 5.0))
        frontier.insert((5.0, 1.0))
        assert sorted(frontier) == [(1.0, 5.0), (5.0, 1.0)]

    def test_mutual_non_domination_invariant(self, rng):
        frontier = ParetoFrontier()
        for _ in range(300):
            frontier.insert((rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)))
        items = frontier.items()
        for first in items:
            for second in items:
                if first is second:
                    continue
                assert not (dominates(first, second) and first != second)


class TestParetoFrontierApproximate:
    def test_alpha_coarsens_insertion(self):
        frontier = ParetoFrontier(alpha=2.0)
        frontier.insert((1.0, 1.0))
        # Within factor two of the existing point → rejected.
        assert not frontier.insert((1.5, 1.9))
        # Outside factor two in one metric → kept.
        assert frontier.insert((0.4, 3.0))

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            ParetoFrontier(alpha=0.5)
        frontier = ParetoFrontier()
        with pytest.raises(ValueError):
            frontier.alpha = 0.0

    def test_alpha_setter(self):
        frontier = ParetoFrontier()
        frontier.alpha = 3.0
        assert frontier.alpha == 3.0

    def test_covers_query(self):
        frontier = ParetoFrontier()
        frontier.insert((1.0, 1.0))
        assert frontier.covers((1.5, 1.5), alpha=2.0)
        assert not frontier.covers((0.5, 0.5), alpha=1.5)

    def test_dominated_by_any(self):
        frontier = ParetoFrontier()
        frontier.insert((1.0, 1.0))
        assert frontier.dominated_by_any((2.0, 2.0))
        assert not frontier.dominated_by_any((1.0, 1.0))

    def test_custom_cost_extractor(self, chain_model):
        frontier = ParetoFrontier(cost_of=lambda plan: plan.cost)
        for op in chain_model.scan_operators(1):
            frontier.insert(chain_model.make_scan(1, op))
        assert len(frontier) >= 1
        assert all(hasattr(item, "cost") for item in frontier.items())


class TestParetoFilter:
    def test_filter_keeps_non_dominated(self):
        points = [(1.0, 5.0), (5.0, 1.0), (3.0, 3.0), (6.0, 6.0)]
        result = pareto_filter(points)
        assert (6.0, 6.0) not in result
        assert set(result) == {(1.0, 5.0), (5.0, 1.0), (3.0, 3.0)}

    def test_filter_collapses_duplicates(self):
        assert pareto_filter([(1.0, 1.0), (1.0, 1.0)]) == [(1.0, 1.0)]

    def test_filter_empty(self):
        assert pareto_filter([]) == []

    def test_filter_with_alpha(self):
        points = [(1.0, 1.0), (1.5, 1.5), (10.0, 0.5)]
        result = pareto_filter(points, alpha=2.0)
        assert (1.5, 1.5) not in result
