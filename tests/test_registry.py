"""Tests for the algorithm registry (repro.baselines.make_optimizer)."""

import random

import pytest

from repro.baselines import (
    PAPER_ALGORITHMS,
    available_algorithms,
    make_optimizer,
)
from repro.baselines.dp import ArenaDPOptimizer, DPOptimizer
from repro.core.interface import AnytimeOptimizer
from repro.core.rmq import RMQOptimizer


class TestRegistry:
    def test_paper_algorithms_all_available(self):
        names = available_algorithms()
        for name in PAPER_ALGORITHMS:
            assert name in names

    def test_paper_algorithm_order_matches_figure_legend(self):
        assert PAPER_ALGORITHMS == (
            "DP(Infinity)",
            "DP(1000)",
            "DP(2)",
            "SA",
            "2P",
            "NSGA-II",
            "II",
            "RMQ",
        )

    def test_make_optimizer_returns_anytime_optimizers(self, chain_model):
        for name in PAPER_ALGORITHMS:
            optimizer = make_optimizer(name, chain_model, random.Random(0))
            assert isinstance(optimizer, AnytimeOptimizer)

    def test_unknown_name_rejected(self, chain_model):
        with pytest.raises(KeyError):
            make_optimizer("SimulatedQuantumAnnealing", chain_model)

    def test_dp_alpha_parsed_from_name(self, chain_model):
        dp2 = make_optimizer("DP(2)", chain_model)
        assert isinstance(dp2, ArenaDPOptimizer)
        assert dp2.alpha == 2.0
        dp_inf = make_optimizer("DP(Infinity)", chain_model)
        assert dp_inf.alpha >= 1e12

    def test_dp_object_engine_selected_by_env(self, chain_model, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_ENGINE", "object")
        assert isinstance(make_optimizer("DP(2)", chain_model), DPOptimizer)

    def test_rmq_variants_available(self, chain_model):
        for name in ("RMQ-NoCache", "RMQ-NoClimb", "RMQ-LeftDeep", "RMQ-AlphaFixed1"):
            optimizer = make_optimizer(name, chain_model, random.Random(0))
            assert isinstance(optimizer, RMQOptimizer)

    def test_default_rng_created_when_omitted(self, chain_model):
        optimizer = make_optimizer("II", chain_model)
        assert isinstance(optimizer, AnytimeOptimizer)

    @pytest.mark.parametrize("name", ["RMQ", "II", "SA", "2P", "NSGA-II"])
    def test_all_randomized_algorithms_produce_plans(self, name, chain_model):
        optimizer = make_optimizer(name, chain_model, random.Random(11))
        frontier = optimizer.run(max_steps=3)
        assert frontier, f"{name} produced no plans after 3 steps"
