"""Tests for the benchmark task graph (repro.bench.tasks).

The headline property — pinned by ``TestShardDeterminism`` — is that a
step-driven scenario produces bit-identical results however it is executed:
strictly sequential, in parallel at ``cell`` or ``case`` granularity, or as
shards serialized to JSON and merged later.
"""

import dataclasses
import json
import os

import pytest

from repro.bench.anytime import CheckpointRecord
from repro.bench.runner import merge_shards, reduce_task_results, run_scenario
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.tasks import (
    ROLE_ALGORITHM,
    ROLE_REFERENCE,
    TaskResult,
    TaskSpec,
    execute_task,
    execute_tasks,
    load_shards,
    resolve_granularity,
    run_shard,
    schedule_tasks,
    shard_tasks,
    write_shard,
)
from repro.query.join_graph import GraphShape


@pytest.fixture(scope="module")
def step_spec():
    """Deterministic step-driven smoke spec (two cells, two algorithms)."""
    return ScenarioSpec(
        name="tasks-smoke",
        description="task graph determinism smoke spec",
        graph_shapes=(GraphShape.CHAIN, GraphShape.STAR),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RandomSampling", "RMQ"),
        num_test_cases=2,
        step_checkpoints=(2, 4),
        seed=11,
        scale=ScenarioScale.SMOKE,
    )


@pytest.fixture(scope="module")
def reference_spec():
    """Step-driven spec with a DP reference task per test case."""
    return ScenarioSpec(
        name="tasks-reference",
        description="task graph spec with reference tasks",
        graph_shapes=(GraphShape.CHAIN,),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RandomSampling",),
        num_test_cases=2,
        step_checkpoints=(2, 3),
        reference_algorithm="DP(1.01)",
        seed=13,
        scale=ScenarioScale.SMOKE,
    )


@pytest.fixture(scope="module")
def sequential_result(step_spec):
    return run_scenario(step_spec, workers=1)


class TestSchedule:
    def test_one_task_per_cell_case_algorithm(self, step_spec):
        tasks = schedule_tasks(step_spec)
        expected = (
            step_spec.num_cells
            * step_spec.num_test_cases
            * len(step_spec.algorithms)
        )
        assert len(tasks) == expected
        assert all(task.role == ROLE_ALGORITHM for task in tasks)

    def test_reference_tasks_scheduled_per_case(self, reference_spec):
        tasks = schedule_tasks(reference_spec)
        references = [task for task in tasks if task.role == ROLE_REFERENCE]
        assert len(references) == reference_spec.num_cells * reference_spec.num_test_cases
        assert all(task.algorithm == "DP(1.01)" for task in references)

    def test_schedule_is_deterministic(self, step_spec):
        assert schedule_tasks(step_spec) == schedule_tasks(step_spec)

    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(
                role="mystery",
                shape=GraphShape.CHAIN,
                num_tables=4,
                case_index=0,
                algorithm="RMQ",
            )


class TestSharding:
    def test_shards_partition_the_schedule(self, step_spec):
        tasks = schedule_tasks(step_spec)
        for count in (1, 2, 3):
            shards = [shard_tasks(tasks, index, count) for index in range(count)]
            merged = [task for shard in shards for task in shard]
            assert sorted(merged, key=tasks.index) == tasks
            seen = set()
            for shard in shards:
                for task in shard:
                    assert task not in seen
                    seen.add(task)

    def test_invalid_shard_designators_rejected(self, step_spec):
        tasks = schedule_tasks(step_spec)
        with pytest.raises(ValueError):
            shard_tasks(tasks, 0, 0)
        with pytest.raises(ValueError):
            shard_tasks(tasks, 2, 2)
        with pytest.raises(ValueError):
            shard_tasks(tasks, -1, 2)


class TestSerialization:
    def test_task_spec_round_trip(self, step_spec):
        for task in schedule_tasks(step_spec):
            assert TaskSpec.from_json_dict(task.to_json_dict()) == task

    def test_task_result_round_trip_is_bit_exact(self, step_spec):
        task = schedule_tasks(step_spec)[0]
        result = execute_task(step_spec, task)
        recovered = TaskResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert recovered == result

    def test_spec_round_trip(self, step_spec, reference_spec):
        for spec in (step_spec, reference_spec):
            assert ScenarioSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_infinite_costs_survive_round_trip(self):
        record = CheckpointRecord(
            checkpoint=1.0,
            elapsed=0.5,
            steps=1,
            frontier_costs=((float("inf"), 2.0),),
        )
        result = TaskResult(
            task=TaskSpec(
                role=ROLE_ALGORITHM,
                shape=GraphShape.CHAIN,
                num_tables=4,
                case_index=0,
                algorithm="RMQ",
            ),
            records=(record,),
        )
        recovered = TaskResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert recovered == result


class TestShardDeterminism:
    """run_scenario == case-granularity parallel run == shard merge, bit-for-bit."""

    def test_case_granularity_parallel_matches_sequential(
        self, step_spec, sequential_result
    ):
        parallel = run_scenario(step_spec, workers=4, granularity="case")
        assert parallel.cells == sequential_result.cells

    def test_cell_granularity_parallel_matches_sequential(
        self, step_spec, sequential_result
    ):
        parallel = run_scenario(step_spec, workers=2, granularity="cell")
        assert parallel.cells == sequential_result.cells

    def test_two_shard_merge_matches_sequential(
        self, step_spec, sequential_result, tmp_path
    ):
        paths = []
        for index in range(2):
            path = os.fspath(tmp_path / f"shard{index}.json")
            write_shard(path, step_spec, index, 2, run_shard(step_spec, index, 2))
            paths.append(path)
        merged = merge_shards(paths)
        assert merged.spec == step_spec
        assert merged.cells == sequential_result.cells

    def test_reference_spec_merge_matches_sequential(self, reference_spec, tmp_path):
        sequential = run_scenario(reference_spec)
        paths = []
        for index in range(2):
            path = os.fspath(tmp_path / f"ref-shard{index}.json")
            write_shard(
                path, reference_spec, index, 2, run_shard(reference_spec, index, 2)
            )
            paths.append(path)
        assert merge_shards(paths).cells == sequential.cells

    def test_reduce_is_order_insensitive(self, step_spec, sequential_result):
        results = execute_tasks(step_spec, schedule_tasks(step_spec))
        reversed_reduce = reduce_task_results(step_spec, list(reversed(results)))
        assert reversed_reduce == sequential_result.cells


class TestMergeValidation:
    def _write(self, path, spec, index, count, results):
        write_shard(os.fspath(path), spec, index, count, results)
        return os.fspath(path)

    def test_missing_shard_rejected(self, step_spec, tmp_path):
        path = self._write(
            tmp_path / "only0.json", step_spec, 0, 2, run_shard(step_spec, 0, 2)
        )
        with pytest.raises(ValueError, match="missing shard indices"):
            load_shards([path])

    def test_duplicate_shard_rejected(self, step_spec, tmp_path):
        results = run_shard(step_spec, 0, 2)
        paths = [
            self._write(tmp_path / "a.json", step_spec, 0, 2, results),
            self._write(tmp_path / "b.json", step_spec, 0, 2, results),
        ]
        with pytest.raises(ValueError, match="duplicate shard index"):
            load_shards(paths)

    def test_mismatched_spec_rejected(self, step_spec, tmp_path):
        other_spec = dataclasses.replace(step_spec, seed=step_spec.seed + 1)
        paths = [
            self._write(tmp_path / "a.json", step_spec, 0, 2, run_shard(step_spec, 0, 2)),
            self._write(
                tmp_path / "b.json", other_spec, 1, 2, run_shard(other_spec, 1, 2)
            ),
        ]
        with pytest.raises(ValueError, match="spec differs"):
            load_shards(paths)

    def test_incomplete_coverage_rejected(self, step_spec, tmp_path):
        # Claim full coverage (one shard of one) but drop a task result.
        results = run_shard(step_spec, 0, 1)[:-1]
        path = self._write(tmp_path / "partial.json", step_spec, 0, 1, results)
        with pytest.raises(ValueError, match="do not cover the schedule"):
            load_shards([path])

    def test_non_shard_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro-shard-v2"):
            load_shards([os.fspath(path)])

    def test_tampered_spec_rejected_by_provenance_hash(self, step_spec, tmp_path):
        # Editing the embedded spec after the run must be caught even though
        # the file is otherwise self-consistent.
        path = os.fspath(tmp_path / "tampered.json")
        write_shard(path, step_spec, 0, 1, run_shard(step_spec, 0, 1))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["spec"]["seed"] = payload["spec"]["seed"] + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="provenance hash mismatch"):
            load_shards([path])

    def test_missing_spec_hash_rejected(self, step_spec, tmp_path):
        path = os.fspath(tmp_path / "nohash.json")
        write_shard(path, step_spec, 0, 1, run_shard(step_spec, 0, 1))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        del payload["spec_hash"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="no spec provenance hash"):
            load_shards([path])

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError):
            load_shards([])


class TestAutoGranularity:
    """'auto' picks cell vs. case from the task-count/worker ratio."""

    def test_explicit_granularities_pass_through(self, step_spec):
        tasks = schedule_tasks(step_spec)
        assert resolve_granularity("cell", tasks, 8) == "cell"
        assert resolve_granularity("case", tasks, 1) == "case"

    def test_auto_is_cell_for_sequential_runs(self, step_spec):
        assert resolve_granularity("auto", schedule_tasks(step_spec), 1) == "cell"

    def test_auto_switches_on_group_to_worker_ratio(self, step_spec):
        # The smoke spec has two cells: plenty of groups for no one, so any
        # multi-worker run should prefer within-cell parallelism.
        tasks = schedule_tasks(step_spec)
        assert resolve_granularity("auto", tasks, 2) == "case"
        many_cells = dataclasses.replace(
            step_spec, table_counts=tuple(range(4, 4 + 8))
        )
        wide = schedule_tasks(many_cells)  # 2 shapes x 8 sizes = 16 groups
        assert resolve_granularity("auto", wide, 2) == "cell"
        assert resolve_granularity("auto", wide, 8) == "case"

    def test_unknown_granularity_rejected(self, step_spec):
        with pytest.raises(ValueError):
            resolve_granularity("query", schedule_tasks(step_spec), 2)

    def test_auto_execution_matches_sequential(self, step_spec, sequential_result):
        parallel = run_scenario(step_spec, workers=2, granularity="auto")
        assert parallel.cells == sequential_result.cells


class TestProvenance:
    def test_records_carry_steps_and_elapsed(self, step_spec):
        result = execute_task(step_spec, schedule_tasks(step_spec)[0])
        assert result.steps == step_spec.step_checkpoints[-1]
        assert result.elapsed >= 0.0
        assert result.task.task_id.startswith("algorithm:")

    def test_provenance_report_lists_every_task(self, step_spec):
        from repro.bench.reporting import format_task_provenance

        results = execute_tasks(step_spec, schedule_tasks(step_spec)[:3])
        report = format_task_provenance(results)
        assert "Task provenance (3 tasks):" in report
        for result in results:
            assert result.task.task_id in report
