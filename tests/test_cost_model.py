"""Unit tests for repro.cost.model."""

import random

import pytest

from repro.cost.metrics import CostModelConfig, TimeMetric
from repro.cost.model import MultiObjectiveCostModel, sample_metric_names
from repro.pareto.dominance import dominates
from repro.plans.operators import OperatorLibrary


class TestConstruction:
    def test_default_metrics_are_paper_metrics(self, chain_query_4):
        model = MultiObjectiveCostModel(chain_query_4)
        assert model.metric_names == ("time", "buffer", "disk")
        assert model.num_metrics == 3

    def test_metric_instances_accepted(self, chain_query_4):
        model = MultiObjectiveCostModel(chain_query_4, metrics=(TimeMetric(),))
        assert model.metric_names == ("time",)

    def test_empty_metrics_rejected(self, chain_query_4):
        with pytest.raises(ValueError):
            MultiObjectiveCostModel(chain_query_4, metrics=())

    def test_custom_library_and_config(self, chain_query_4):
        library = OperatorLibrary.minimal()
        config = CostModelConfig(bytes_per_row=10.0)
        model = MultiObjectiveCostModel(
            chain_query_4, metrics=("time",), library=library, config=config
        )
        assert model.library is library
        assert model.config is config


class TestPlanBuilding:
    def test_scan_cost_vector_arity(self, chain_model):
        scan = chain_model.default_scan(0)
        assert len(scan.cost) == 3
        assert all(value >= 0 for value in scan.cost)

    def test_join_cost_is_children_plus_node(self, chain_model):
        outer = chain_model.default_scan(0)
        inner = chain_model.default_scan(1)
        join = chain_model.default_join(outer, inner)
        for metric_index in range(chain_model.num_metrics):
            assert join.cost[metric_index] >= (
                outer.cost[metric_index] + inner.cost[metric_index]
            )

    def test_join_cardinality_uses_selectivity(self, chain_model, chain_query_4):
        outer = chain_model.default_scan(0)
        inner = chain_model.default_scan(1)
        join = chain_model.default_join(outer, inner)
        expected = (
            chain_query_4.cardinality(0) * chain_query_4.cardinality(1) * 0.01
        )
        assert join.cardinality == pytest.approx(expected)

    def test_principle_of_optimality(self, chain_model):
        """Replacing a sub-plan by a dominating one never worsens the parent."""
        scan_variants = [
            chain_model.make_scan(1, op) for op in chain_model.scan_operators(1)
        ]
        inner = chain_model.default_scan(2)
        # Pick two variants where one dominates the other.
        dominated_pairs = [
            (a, b)
            for a in scan_variants
            for b in scan_variants
            if a is not b and dominates(a.cost, b.cost)
        ]
        assert dominated_pairs, "expected at least one dominated scan variant"
        better, worse = dominated_pairs[0]
        operator = chain_model.join_operators(better, inner)[0]
        join_better = chain_model.make_join(better, inner, operator)
        join_worse = chain_model.make_join(worse, inner, operator)
        assert dominates(join_better.cost, join_worse.cost)

    def test_operator_shortcuts(self, chain_model):
        scan_ops = chain_model.scan_operators(0)
        assert len(scan_ops) == len(chain_model.library.scan_operators)
        outer = chain_model.default_scan(0)
        inner = chain_model.default_scan(1)
        join_ops = chain_model.join_operators(outer, inner)
        assert all(not op.requires_materialized_inner for op in join_ops)

    def test_operator_variety_creates_cost_tradeoffs(self, chain_model):
        """Different operators for the same join realize different tradeoffs.

        This is the property motivating Algorithm 3: one join order can cover
        several Pareto-optimal cost vectors via operator choices.
        """
        outer = chain_model.default_scan(3)
        inner = chain_model.default_scan(1)  # large build side (10,000 rows)
        costs = [
            chain_model.make_join(outer, inner, op).cost
            for op in chain_model.join_operators(outer, inner)
        ]
        non_dominated = [
            cost
            for cost in costs
            if not any(dominates(other, cost) and other != cost for other in costs)
        ]
        assert len(set(non_dominated)) >= 2


class TestMetricSampling:
    def test_sample_metric_names_size(self):
        rng = random.Random(3)
        names = sample_metric_names(2, rng)
        assert len(names) == 2
        assert len(set(names)) == 2

    def test_sample_metric_names_full_pool(self):
        rng = random.Random(3)
        assert set(sample_metric_names(3, rng)) == {"time", "buffer", "disk"}

    def test_sample_metric_names_invalid_count(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            sample_metric_names(0, rng)
        with pytest.raises(ValueError):
            sample_metric_names(4, rng)

    def test_sampling_is_uniformish(self):
        rng = random.Random(5)
        counts = {"time": 0, "buffer": 0, "disk": 0}
        for _ in range(300):
            for name in sample_metric_names(2, rng):
                counts[name] += 1
        assert all(count > 100 for count in counts.values())
