"""Unit tests for repro.core.random_plans."""

import random


from repro.core.random_plans import RandomPlanGenerator
from repro.plans.plan import JoinPlan
from repro.plans.validation import validate_plan


class TestRandomBushyPlans:
    def test_plan_covers_all_tables(self, cycle_model, cycle_query_6, rng):
        generator = RandomPlanGenerator(cycle_model, rng)
        plan = generator.random_bushy_plan()
        assert plan.rel == cycle_query_6.relations
        assert plan.num_nodes == 2 * cycle_query_6.num_tables - 1

    def test_plans_are_valid(self, star_model, star_query_5, rng):
        generator = RandomPlanGenerator(star_model, rng)
        for plan in generator.random_plans(30):
            validate_plan(plan, star_query_5, star_model.library, star_model.num_metrics)

    def test_single_table_query_yields_scan(self, single_table_query, rng):
        from repro.cost.model import MultiObjectiveCostModel

        model = MultiObjectiveCostModel(single_table_query, metrics=("time",))
        generator = RandomPlanGenerator(model, rng)
        plan = generator.random_bushy_plan()
        assert not plan.is_join
        assert plan.rel == frozenset({0})

    def test_randomness_produces_different_join_orders(self, cycle_model):
        generator = RandomPlanGenerator(cycle_model, random.Random(11))
        signatures = {
            plan.join_order_signature() for plan in generator.random_plans(40)
        }
        assert len(signatures) > 5

    def test_reproducible_from_seed(self, cycle_model):
        first = RandomPlanGenerator(cycle_model, random.Random(3)).random_plans(10)
        second = RandomPlanGenerator(cycle_model, random.Random(3)).random_plans(10)
        for a, b in zip(first, second):
            assert a.structurally_equal(b)

    def test_bushy_plans_occur(self, cycle_model):
        """The generator must produce genuinely bushy trees, not only linear ones."""
        generator = RandomPlanGenerator(cycle_model, random.Random(5))
        bushy_found = False
        for plan in generator.random_plans(50):
            assert isinstance(plan, JoinPlan)
            if plan.outer.is_join and plan.inner.is_join:
                bushy_found = True
                break
        assert bushy_found

    def test_random_batch_length(self, chain_model, rng):
        generator = RandomPlanGenerator(chain_model, rng)
        assert len(generator.random_plans(7)) == 7


class TestRandomLeftDeepPlans:
    def test_left_deep_structure(self, cycle_model, cycle_query_6, rng):
        generator = RandomPlanGenerator(cycle_model, rng)
        plan = generator.random_left_deep_plan()
        assert plan.rel == cycle_query_6.relations
        node = plan
        while isinstance(node, JoinPlan):
            assert not node.inner.is_join, "inner child of a left-deep join must be a scan"
            node = node.outer

    def test_left_deep_plans_are_valid(self, chain_model, chain_query_4, rng):
        generator = RandomPlanGenerator(chain_model, rng)
        for _ in range(10):
            plan = generator.random_left_deep_plan()
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_left_deep_orders_vary(self, cycle_model):
        generator = RandomPlanGenerator(cycle_model, random.Random(9))
        signatures = {
            generator.random_left_deep_plan().join_order_signature() for _ in range(30)
        }
        assert len(signatures) > 3
