"""Tests for the II baseline (multi-objective iterative improvement)."""

import random

import pytest

from repro.baselines.iterative_improvement import IterativeImprovementOptimizer
from repro.pareto.dominance import strictly_dominates
from repro.plans.validation import validate_plan


@pytest.fixture
def optimizer(chain_model):
    return IterativeImprovementOptimizer(chain_model, rng=random.Random(4))


class TestIterativeImprovement:
    def test_empty_before_first_step(self, optimizer):
        assert optimizer.frontier() == []

    def test_each_step_archives_a_local_optimum(self, optimizer, chain_query_4, chain_model):
        optimizer.step()
        frontier = optimizer.frontier()
        assert len(frontier) >= 1
        for plan in frontier:
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_archive_is_non_dominated(self, optimizer):
        optimizer.run(max_steps=8)
        frontier = optimizer.frontier()
        for first in frontier:
            for second in frontier:
                if first is second:
                    continue
                assert not (strictly_dominates(first.cost, second.cost))

    def test_path_lengths_recorded(self, optimizer):
        optimizer.run(max_steps=5)
        assert len(optimizer.climb_path_lengths) == 5
        assert all(length >= 0 for length in optimizer.climb_path_lengths)

    def test_statistics_track_work(self, optimizer):
        optimizer.run(max_steps=3)
        assert optimizer.statistics.steps == 3
        assert optimizer.statistics.plans_built > 0

    def test_never_finished(self, optimizer):
        assert not optimizer.finished

    def test_frontier_grows_or_stays_with_more_steps(self, chain_model):
        optimizer = IterativeImprovementOptimizer(chain_model, rng=random.Random(8))
        optimizer.run(max_steps=2)
        best_after_2 = min(plan.cost[0] for plan in optimizer.frontier())
        optimizer.run(max_steps=10)
        best_after_12 = min(plan.cost[0] for plan in optimizer.frontier())
        assert best_after_12 <= best_after_2

    def test_reproducible_with_seed(self, chain_model):
        first = IterativeImprovementOptimizer(chain_model, rng=random.Random(1))
        second = IterativeImprovementOptimizer(chain_model, rng=random.Random(1))
        first.run(max_steps=4)
        second.run(max_steps=4)
        assert sorted(p.cost for p in first.frontier()) == sorted(
            p.cost for p in second.frontier()
        )
