"""Tests for the columnar plan engine (arena + batch cost kernel).

Two layers of guarantees are pinned here:

1. **Kernel equivalence** — the vectorized metric kernels
   (``join_cost_batch``) and the batch cardinality/cross-product paths are
   *bit-identical* to the scalar kernels (``join_cost_cards``), including
   NaN/inf cardinalities and extreme magnitudes (hypothesis property tests
   mirroring the style of ``tests/test_store.py``).
2. **Engine equivalence** — every rewired search algorithm produces
   bit-identical results under ``engine="arena"`` and ``engine="object"``:
   same frontier contents and order, same RNG stream, same work counters —
   for random queries, every operator library, ablation flags, and whole
   step-driven benchmark scenarios.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.iterative_improvement import IterativeImprovementOptimizer
from repro.baselines.nsga2 import NSGA2Optimizer
from repro.baselines.random_sampling import RandomSamplingOptimizer
from repro.baselines.simulated_annealing import SimulatedAnnealingOptimizer
from repro.baselines.two_phase import TwoPhaseOptimizer
from repro.core.frontier import AlphaSchedule
from repro.core.rmq import RMQOptimizer
from repro.cost.batch import BatchCostModel
from repro.cost.metrics import CostModelConfig, metric_by_name
from repro.cost.model import MultiObjectiveCostModel
from repro.plans.arena import PLAN_ENGINES, resolve_plan_engine
from repro.plans.operators import OperatorLibrary
from repro.plans.transformations import TransformationRules
from repro.plans.validation import validate_plan
from repro.query.generator import QueryGenerator
from repro.query.join_graph import GraphShape

ALL_METRICS = ("time", "buffer", "disk", "monetary", "energy", "precision_loss")

#: Cardinalities spanning the pathological range: tiny, huge, subnormal-ish
#: products, and the non-finite values the estimator can produce.
cardinality = st.one_of(
    st.floats(min_value=1.0, max_value=1e12),
    st.sampled_from(
        [1.0, 2.0, 1e-3, 1e6, 1e18, 1e300, float("inf"), float("nan")]
    ),
)


def _join_operators():
    operators = []
    for library in (
        OperatorLibrary.default(),
        OperatorLibrary.cloud(),
        OperatorLibrary.sampling(),
    ):
        operators.extend(library.join_operators)
    return operators


JOIN_OPERATORS = _join_operators()


class TestBatchKernelEquivalence:
    """join_cost_batch == join_cost_cards, bit for bit."""

    @given(
        st.lists(
            st.tuples(cardinality, cardinality, cardinality),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=0, max_value=len(JOIN_OPERATORS) - 1),
        st.sampled_from(ALL_METRICS),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_kernel(self, rows, operator_index, metric_name):
        operator = JOIN_OPERATORS[operator_index]
        metric = metric_by_name(metric_name)
        config = CostModelConfig()
        outer = np.asarray([row[0] for row in rows])
        inner = np.asarray([row[1] for row in rows])
        output = np.asarray([row[2] for row in rows])
        try:
            expected = [
                metric.join_cost_cards(
                    float(o), float(i), operator, float(c), config
                )
                for o, i, c in rows
            ]
        except (OverflowError, ValueError):
            # The scalar kernel rejects e.g. ceil(log(inf)); the batch
            # kernel may either raise the same error or produce non-finite
            # values — it must not crash differently.
            try:
                metric.join_cost_batch(outer, inner, operator, output, config)
            except (OverflowError, ValueError):
                pass
            return
        batch = metric.join_cost_batch(outer, inner, operator, output, config)
        assert batch.shape == (len(rows),)
        for position, value in enumerate(expected):
            got = float(batch[position])
            assert got == value or (math.isnan(got) and math.isnan(value))

    @given(
        st.lists(st.tuples(cardinality, cardinality), min_size=1, max_size=30),
        st.floats(min_value=1e-9, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_cardinality_matches_estimator_rule(self, pairs, selectivity):
        # The scalar rule: max(1.0, outer * inner * selectivity) — NaN maps
        # to 1.0 because Python's max keeps the first argument.
        outer = np.asarray([pair[0] for pair in pairs])
        inner = np.asarray([pair[1] for pair in pairs])
        products = outer * inner * selectivity
        batch = np.where(products > 1.0, products, 1.0)
        for position, (o, i) in enumerate(pairs):
            expected = max(1.0, o * i * selectivity)
            assert float(batch[position]) == expected


def _random_model(seed, num_tables=5, metrics=("time", "buffer", "disk"),
                  library=None, shape=GraphShape.CHAIN):
    query = QueryGenerator(rng=random.Random(seed)).generate(num_tables, shape)
    return MultiObjectiveCostModel(query, metrics=metrics, library=library)


class TestCrossProductEquivalence:
    """join_candidates == the scalar triple loop, candidate for candidate."""

    @pytest.mark.parametrize("seed", [3, 7, 11])
    @pytest.mark.parametrize(
        "library_name,metrics",
        [
            (None, ("time", "buffer", "disk")),
            ("cloud", ("time", "monetary")),
            ("sampling", ("time", "precision_loss")),
            (None, ALL_METRICS),
        ],
    )
    def test_matches_scalar_enumeration(self, seed, library_name, metrics):
        library = {
            None: None,
            "cloud": OperatorLibrary.cloud(),
            "sampling": OperatorLibrary.sampling(),
        }[library_name]
        model = _random_model(seed, metrics=metrics, library=library)
        batch_model = BatchCostModel(model)
        rng = random.Random(seed)
        # Random partial plans over two disjoint table sets, several per side
        # (duplicates included: the same sub-plan twice is a legal frontier
        # input for costing purposes).
        from repro.core.random_plans import ArenaRandomPlanGenerator

        generator = ArenaRandomPlanGenerator(batch_model, rng)
        plans = [generator.random_bushy_plan() for _ in range(4)]
        arena = batch_model.arena
        outer_handles = []
        inner_handles = []
        for handle in plans:
            if arena.is_join(handle):
                outer_handles.append(arena.outer(handle))
                inner_handles.append(arena.inner(handle))
        outer_rel = arena.rel(outer_handles[0])
        inner_rel = arena.rel(inner_handles[0])
        outer_handles = [
            handle for handle in outer_handles if arena.rel(handle) == outer_rel
        ] * 2
        inner_handles = [
            handle for handle in inner_handles if arena.rel(handle) == inner_rel
        ] * 2
        if any(outer_rel & inner_rel):
            pytest.skip("random roots overlap")

        batch = batch_model.join_candidates(outer_handles, inner_handles)
        # Scalar enumeration through the object cost model.
        position = 0
        for outer_handle in outer_handles:
            outer_plan = arena.to_plan(outer_handle)
            for inner_handle in inner_handles:
                inner_plan = arena.to_plan(inner_handle)
                for operator in model.join_operators(outer_plan, inner_plan):
                    plan = model.make_join(outer_plan, inner_plan, operator)
                    assert tuple(batch.costs[position].tolist()) == plan.cost
                    assert float(batch.cardinalities[position]) == plan.cardinality
                    assert (
                        arena.operator(int(batch.op_codes[position])) == operator
                    )
                    position += 1
        assert position == batch.size


ENGINE_CASES = [
    dict(),
    dict(metrics=("time",)),
    dict(metrics=ALL_METRICS),
    dict(library="cloud", metrics=("time", "monetary")),
    dict(library="sampling", metrics=("time", "precision_loss")),
    dict(library="minimal"),
    dict(num_tables=1),
    dict(num_tables=2),
    dict(shape=GraphShape.STAR),
    dict(shape=GraphShape.CYCLE),
]


def _build_model(case, seed):
    case = dict(case)
    library = {
        None: None,
        "cloud": OperatorLibrary.cloud(),
        "sampling": OperatorLibrary.sampling(),
        "minimal": OperatorLibrary.minimal(),
    }[case.pop("library", None)]
    return _random_model(
        seed,
        num_tables=case.pop("num_tables", 5),
        metrics=case.pop("metrics", ("time", "buffer", "disk")),
        library=library,
        shape=case.pop("shape", GraphShape.CHAIN),
    )


def _run_engine(optimizer_factory, case, seed, steps):
    results = {}
    for engine in PLAN_ENGINES:
        model = _build_model(case, seed)
        rng = random.Random(seed + 1)
        optimizer = optimizer_factory(model, rng, engine)
        optimizer.run(max_steps=steps)
        results[engine] = (
            [plan.cost for plan in optimizer.frontier()],
            rng.getstate(),
            optimizer.statistics.plans_built,
            optimizer.statistics.steps,
        )
    return results


class TestEngineEquivalence:
    """arena == object: frontiers, RNG stream, and work counters."""

    @pytest.mark.parametrize("case", ENGINE_CASES, ids=lambda case: repr(case))
    def test_rmq(self, case):
        results = _run_engine(
            lambda model, rng, engine: RMQOptimizer(model, rng=rng, engine=engine),
            case, seed=21, steps=10,
        )
        assert results["arena"] == results["object"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(left_deep_only=True),
            dict(use_climbing=False),
            dict(use_plan_cache=False),
            dict(schedule=AlphaSchedule.constant(1.0)),
            dict(schedule=AlphaSchedule.compressed()),
            dict(store="sorted"),
            dict(rules=TransformationRules(enable_associativity=False)),
            dict(rules=TransformationRules(enable_operator_change=False)),
            dict(rules=TransformationRules(enable_exchange=False)),
        ],
        ids=lambda kwargs: next(iter(kwargs)),
    )
    def test_rmq_variants(self, kwargs):
        results = _run_engine(
            lambda model, rng, engine: RMQOptimizer(
                model, rng=rng, engine=engine, **kwargs
            ),
            dict(), seed=33, steps=10,
        )
        assert results["arena"] == results["object"]

    @pytest.mark.parametrize("seed", [2, 9])
    def test_random_sampling(self, seed):
        results = _run_engine(
            lambda model, rng, engine: RandomSamplingOptimizer(
                model, rng=rng, engine=engine
            ),
            dict(), seed=seed, steps=8,
        )
        assert results["arena"] == results["object"]

    @pytest.mark.parametrize("seed", [2, 9])
    def test_nsga2(self, seed):
        results = _run_engine(
            lambda model, rng, engine: NSGA2Optimizer(
                model, rng=rng, engine=engine, population_size=16
            ),
            dict(), seed=seed, steps=5,
        )
        assert results["arena"] == results["object"]

    @pytest.mark.parametrize("seed", [2, 9])
    def test_iterative_improvement(self, seed):
        results = _run_engine(
            lambda model, rng, engine: IterativeImprovementOptimizer(
                model, rng=rng, engine=engine
            ),
            dict(), seed=seed, steps=6,
        )
        assert results["arena"] == results["object"]

    @pytest.mark.parametrize("seed", [2, 9])
    def test_simulated_annealing(self, seed):
        results = _run_engine(
            lambda model, rng, engine: SimulatedAnnealingOptimizer(
                model, rng=rng, engine=engine
            ),
            dict(), seed=seed, steps=12,
        )
        assert results["arena"] == results["object"]

    @pytest.mark.parametrize("seed", [2, 9])
    def test_two_phase(self, seed):
        results = _run_engine(
            lambda model, rng, engine: TwoPhaseOptimizer(
                model, rng=rng, engine=engine
            ),
            dict(), seed=seed, steps=14,
        )
        assert results["arena"] == results["object"]

    def test_rmq_cache_state_matches(self):
        outcomes = {}
        for engine in PLAN_ENGINES:
            model = _build_model(dict(), 5)
            optimizer = RMQOptimizer(model, rng=random.Random(6), engine=engine)
            optimizer.run(max_steps=8)
            cache = optimizer.plan_cache
            outcomes[engine] = (
                sorted(tuple(sorted(rel)) for rel in cache.table_sets()),
                cache.total_plans,
                sorted(cache.frontier_costs(model.query.relations)),
            )
        assert outcomes["arena"] == outcomes["object"]


class TestStepScenarioEquivalence:
    """Whole step-driven benchmark scenarios are engine-independent."""

    def test_step_spec_bit_identical_across_engines(self, monkeypatch):
        from repro.bench.runner import run_scenario
        from repro.bench.scenario import ScenarioScale, ScenarioSpec
        from repro.bench.tasks import clear_reference_memo

        spec = ScenarioSpec(
            name="arena-engine-smoke",
            description="engine bit-identity smoke spec",
            graph_shapes=(GraphShape.CHAIN, GraphShape.STAR),
            table_counts=(4,),
            num_metrics=2,
            algorithms=("RMQ", "NSGA-II", "SA", "2P", "II", "RandomSampling"),
            num_test_cases=2,
            step_checkpoints=(2, 4),
            reference_algorithm="DP(1.01)",
            seed=17,
            scale=ScenarioScale.SMOKE,
        )
        cells = {}
        for engine in PLAN_ENGINES:
            monkeypatch.setenv("REPRO_PLAN_ENGINE", engine)
            clear_reference_memo()
            cells[engine] = run_scenario(spec, workers=1).cells
        assert cells["arena"] == cells["object"]


class TestMaterialization:
    """to_plan reconstructs bit-identical, valid Plan objects."""

    def test_materialized_frontier_validates(self, chain_model, chain_query_4):
        optimizer = RMQOptimizer(chain_model, rng=random.Random(3), engine="arena")
        optimizer.run(max_steps=5)
        for plan in optimizer.frontier():
            validate_plan(
                plan, chain_query_4, chain_model.library, chain_model.num_metrics
            )

    def test_shared_subplans_materialize_to_shared_objects(self, chain_model):
        batch_model = BatchCostModel(chain_model)
        scan = batch_model.make_scan(0, 0)
        other = batch_model.make_scan(1, 0)
        join = batch_model.make_join(scan, other, batch_model.join_codes_for(other)[0])
        plan = batch_model.arena.to_plan(join)
        assert plan.outer.table.index == 0
        assert plan.cost == batch_model.arena.cost(join)

    def test_hash_consing_dedupes_nodes(self, chain_model):
        batch_model = BatchCostModel(chain_model)
        first = batch_model.make_scan(0, 0)
        second = batch_model.make_scan(0, 0)
        assert first == second
        assert len(batch_model.arena) == 1

    def test_intern_plan_round_trips(self, chain_model, rng):
        from repro.core.random_plans import RandomPlanGenerator

        plan = RandomPlanGenerator(chain_model, rng).random_bushy_plan()
        batch_model = BatchCostModel(chain_model)
        handle = batch_model.intern_plan(plan)
        assert batch_model.arena.cost(handle) == plan.cost
        assert batch_model.arena.to_plan(handle).structurally_equal(plan)


class TestEngineResolution:
    def test_default_is_arena(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_ENGINE", raising=False)
        assert resolve_plan_engine(None) == "arena"

    def test_environment_pin(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_ENGINE", "object")
        assert resolve_plan_engine(None) == "object"
        assert resolve_plan_engine("arena") == "arena"  # explicit wins

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown plan engine"):
            resolve_plan_engine("quantum")


class TestDuplicateCandidates:
    """Duplicate candidate rows follow the first-occurrence rule."""

    def test_duplicate_rows_in_batch_keep_first(self, chain_model):
        batch_model = BatchCostModel(chain_model)
        from repro.core.plan_cache import ArenaPlanCache

        cache = ArenaPlanCache(batch_model)
        scan_a = batch_model.make_scan(0, 0)
        scan_b = batch_model.make_scan(1, 0)
        # The same frontier handle listed twice on each side: every
        # candidate appears (at least) four times with identical costs.
        batch = batch_model.join_candidates([scan_a, scan_a], [scan_b, scan_b])
        rel = chain_model.query.table(0).index, chain_model.query.table(1).index
        accepted = cache.insert_candidates(
            frozenset(rel), batch, [scan_a, scan_a], [scan_b, scan_b], alpha=1.0
        )
        costs = cache.frontier_costs(frozenset(rel))
        assert accepted == len(costs)
        assert len(set(costs)) == len(costs)  # duplicates collapsed
