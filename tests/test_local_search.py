"""Unit tests for repro.baselines.local_search (neighbor generation)."""

import random

import pytest

from repro.baselines.local_search import (
    all_neighbors,
    enumerate_node_paths,
    node_at,
    random_neighbor,
    replace_at,
)
from repro.core.random_plans import RandomPlanGenerator
from repro.plans.transformations import TransformationRules
from repro.plans.validation import validate_plan


@pytest.fixture
def rules():
    return TransformationRules()


@pytest.fixture
def bushy_plan(chain_model, rng):
    return RandomPlanGenerator(chain_model, rng).random_bushy_plan()


class TestNodePaths:
    def test_number_of_paths_equals_number_of_nodes(self, bushy_plan):
        paths = enumerate_node_paths(bushy_plan)
        assert len(paths) == bushy_plan.num_nodes
        assert () in paths

    def test_node_at_root(self, bushy_plan):
        assert node_at(bushy_plan, ()) is bushy_plan

    def test_node_at_children(self, bushy_plan):
        assert node_at(bushy_plan, ("o",)) is bushy_plan.outer
        assert node_at(bushy_plan, ("i",)) is bushy_plan.inner

    def test_node_at_invalid_path_rejected(self, chain_model):
        scan = chain_model.default_scan(0)
        with pytest.raises(ValueError):
            node_at(scan, ("o",))

    def test_paths_reach_every_node(self, bushy_plan):
        reached = {id(node_at(bushy_plan, path)) for path in enumerate_node_paths(bushy_plan)}
        expected = {id(node) for node in bushy_plan.iter_nodes()}
        assert reached == expected


class TestReplaceAt:
    def test_replace_root(self, bushy_plan, chain_model, rules):
        replacement = chain_model.default_scan(0)
        assert replace_at(bushy_plan, (), replacement, rules, chain_model) is replacement

    def test_replace_leaf_keeps_table_set(self, bushy_plan, chain_model, rules, chain_query_4):
        paths = enumerate_node_paths(bushy_plan)
        leaf_paths = [p for p in paths if not node_at(bushy_plan, p).is_join]
        path = leaf_paths[0]
        leaf = node_at(bushy_plan, path)
        alternatives = [
            chain_model.make_scan(leaf.table.index, op)
            for op in chain_model.scan_operators(leaf.table.index)
            if op != leaf.operator
        ]
        new_plan = replace_at(bushy_plan, path, alternatives[0], rules, chain_model)
        assert new_plan.rel == bushy_plan.rel
        validate_plan(new_plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_replace_below_scan_rejected(self, chain_model, rules):
        scan = chain_model.default_scan(0)
        with pytest.raises(ValueError):
            replace_at(scan, ("o",), scan, rules, chain_model)


class TestRandomNeighbor:
    def test_neighbor_is_valid_and_covers_query(
        self, bushy_plan, chain_model, chain_query_4, rules
    ):
        rng = random.Random(0)
        for _ in range(20):
            neighbor = random_neighbor(bushy_plan, rules, chain_model, rng)
            assert neighbor is not None
            assert neighbor.rel == bushy_plan.rel
            validate_plan(neighbor, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_neighbor_none_when_no_mutations_exist(self, single_table_query):
        from repro.cost.model import MultiObjectiveCostModel
        from repro.plans.operators import OperatorLibrary

        model = MultiObjectiveCostModel(
            single_table_query, metrics=("time",), library=OperatorLibrary.minimal()
        )
        scan = model.default_scan(0)
        assert random_neighbor(scan, TransformationRules(), model, random.Random(0)) is None

    def test_neighbors_differ_from_original(self, bushy_plan, chain_model, rules):
        rng = random.Random(1)
        changed = 0
        for _ in range(10):
            neighbor = random_neighbor(bushy_plan, rules, chain_model, rng)
            if neighbor is not None and not neighbor.structurally_equal(bushy_plan):
                changed += 1
        assert changed >= 8


class TestAllNeighbors:
    def test_all_neighbors_cover_query_tables(self, bushy_plan, chain_model, rules):
        neighbors = all_neighbors(bushy_plan, rules, chain_model)
        assert neighbors
        assert all(neighbor.rel == bushy_plan.rel for neighbor in neighbors)

    def test_all_neighbors_includes_scan_operator_changes(self, chain_model, rules):
        plan = chain_model.default_join(
            chain_model.default_scan(0), chain_model.default_scan(1)
        )
        neighbors = all_neighbors(plan, rules, chain_model)
        scan_operator_names = set()
        for neighbor in neighbors:
            for node in neighbor.iter_nodes():
                if not node.is_join:
                    scan_operator_names.add(node.operator.name)
        assert len(scan_operator_names) >= 2

    def test_neighbor_count_scales_with_plan_size(self, chain_model, cycle_model, rng):
        small = RandomPlanGenerator(chain_model, rng).random_bushy_plan()
        large = RandomPlanGenerator(cycle_model, rng).random_bushy_plan()
        rules = TransformationRules()
        assert len(all_neighbors(large, rules, cycle_model)) > len(
            all_neighbors(small, rules, chain_model)
        )
