"""Unit tests for repro.pareto.hypervolume."""

import pytest

from repro.pareto.hypervolume import hypervolume


class TestHypervolume2D:
    def test_single_point(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_two_non_dominated_points(self):
        # Points (1,2) and (2,1) with reference (3,3):
        # union area = 2*1 + 1*2 - 1*1 = 3.
        assert hypervolume([(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0)) == pytest.approx(3.0)

    def test_dominated_point_does_not_change_volume(self):
        base = hypervolume([(1.0, 1.0)], (3.0, 3.0))
        with_dominated = hypervolume([(1.0, 1.0), (2.0, 2.0)], (3.0, 3.0))
        assert with_dominated == pytest.approx(base)

    def test_point_outside_reference_ignored(self):
        assert hypervolume([(4.0, 4.0)], (3.0, 3.0)) == 0.0

    def test_empty_set(self):
        assert hypervolume([], (1.0, 1.0)) == 0.0

    def test_better_front_has_larger_volume(self):
        worse = hypervolume([(2.0, 2.0)], (4.0, 4.0))
        better = hypervolume([(1.0, 1.0)], (4.0, 4.0))
        assert better > worse


class TestHypervolume1DAnd3D:
    def test_one_dimension(self):
        assert hypervolume([(2.0,), (1.0,)], (5.0,)) == pytest.approx(4.0)

    def test_three_dimensions_single_point(self):
        assert hypervolume([(1.0, 1.0, 1.0)], (2.0, 3.0, 4.0)) == pytest.approx(6.0)

    def test_three_dimensions_union(self):
        points = [(1.0, 2.0, 2.0), (2.0, 1.0, 2.0)]
        reference = (3.0, 3.0, 3.0)
        # Volumes: 2*1*1=2 each, overlap is 1*1*1=1 → union 3.
        assert hypervolume(points, reference) == pytest.approx(3.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hypervolume([(1.0, 2.0)], (1.0, 2.0, 3.0))

    def test_monotone_under_adding_points(self, rng):
        reference = (10.0, 10.0, 10.0)
        points = []
        previous = 0.0
        for _ in range(30):
            points.append((rng.uniform(0, 9), rng.uniform(0, 9), rng.uniform(0, 9)))
            current = hypervolume(points, reference)
            assert current >= previous - 1e-9
            previous = current
