"""Tests for repro.regress (fingerprints, archive, zoo, regress CLI)."""

from __future__ import annotations

import json
import random
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cost.model as cost_model_module
from repro.bench.cli import run as cli_run
from repro.cost.metrics import CostModelConfig
from repro.query.join_graph import GraphShape
from repro.regress import (
    ARCHIVE_FORMAT,
    Archive,
    ArchiveEntry,
    Coordinate,
    cost_row,
    diff_archives,
    fingerprint_rows,
    frontier_fingerprint,
    load_archive,
    run_coordinate,
    run_zoo,
    save_archive,
    zoo_coordinates,
)
from repro.regress.fingerprint import float_hex
from repro.regress.zoo import (
    ZOO_ALGORITHMS,
    ZOO_ENGINES,
    ZOO_SHAPES,
    ZOO_STAT_MODELS,
    coverage_summary,
)

ARCHIVE_PATH = "tests/regression/archive.json"

# Finite and non-finite float64 values, NaN and ±inf included.
costs = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.sampled_from([0.0, -0.0, 1.0, float("inf"), float("-inf"), float("nan")]),
)
cost_vectors = st.lists(costs, min_size=1, max_size=4)
row_sets = st.lists(cost_vectors, min_size=1, max_size=6)


def _rows(vectors):
    return [cost_row(vector, shape=f"s{i}") for i, vector in enumerate(vectors)]


class TestFingerprintProperties:
    @settings(max_examples=100, deadline=None)
    @given(vectors=row_sets, seed=st.integers(0, 2**16))
    def test_insertion_order_invariance(self, vectors, seed):
        rows = _rows(vectors)
        shuffled = list(rows)
        random.Random(seed).shuffle(shuffled)
        assert fingerprint_rows(rows) == fingerprint_rows(shuffled)

    @settings(max_examples=100, deadline=None)
    @given(
        vectors=row_sets,
        data=st.data(),
        perturbed=costs,
    )
    def test_single_value_perturbation_changes_fingerprint(
        self, vectors, data, perturbed
    ):
        row_index = data.draw(st.integers(0, len(vectors) - 1))
        col_index = data.draw(st.integers(0, len(vectors[row_index]) - 1))
        original = vectors[row_index][col_index]
        # Skip only true no-ops: the identical bit pattern (NaN included).
        if float_hex(perturbed) == float_hex(original):
            return
        mutated = [list(vector) for vector in vectors]
        mutated[row_index][col_index] = perturbed
        assert fingerprint_rows(_rows(vectors)) != fingerprint_rows(_rows(mutated))

    @settings(max_examples=50, deadline=None)
    @given(vectors=row_sets)
    def test_fingerprint_is_deterministic(self, vectors):
        assert fingerprint_rows(_rows(vectors)) == fingerprint_rows(_rows(vectors))

    def test_nan_and_infinities_are_distinct_values(self):
        base = [1.0, 2.0]
        variants = [float("nan"), float("inf"), float("-inf"), 0.0, -0.0]
        prints = {
            fingerprint_rows([cost_row([value] + base)]) for value in variants
        }
        assert len(prints) == len(variants)

    def test_all_nans_fingerprint_identically(self):
        quiet = float("nan")
        other = float("inf") - float("inf")  # another NaN
        assert fingerprint_rows([cost_row([quiet])]) == fingerprint_rows(
            [cost_row([other])]
        )

    def test_adjacent_float64_values_distinguished(self):
        import math

        value = 1.0
        neighbor = math.nextafter(value, 2.0)
        assert fingerprint_rows([cost_row([value])]) != fingerprint_rows(
            [cost_row([neighbor])]
        )

    def test_plan_shape_contributes(self):
        assert fingerprint_rows([cost_row([1.0], shape="aa")]) != fingerprint_rows(
            [cost_row([1.0], shape="bb")]
        )

    def test_duplicate_rows_are_counted(self):
        row = cost_row([1.0, 2.0], shape="s")
        assert fingerprint_rows([row]) != fingerprint_rows([row, row])


class TestFrontierFingerprints:
    def test_engine_invariance_on_real_frontier(self):
        # The same coordinate run on both plan engines must fingerprint
        # identically — the archive treats engines as separate coordinates
        # precisely so this invariant is continuously re-proven.
        base = zoo_coordinates()[0]
        entries = {
            engine: run_coordinate(
                Coordinate(
                    workload=base.workload,
                    algorithm=base.algorithm,
                    engine=engine,
                    seed=base.seed,
                    alpha=base.alpha,
                )
            )
            for engine in ZOO_ENGINES
        }
        prints = {entry.fingerprint for entry in entries.values()}
        assert len(prints) == 1

    def test_frontier_order_invariance(self):
        from repro.bench.scenario import ScenarioSpec
        from repro.bench.tasks import build_test_case
        from repro.core.random_plans import RandomPlanGenerator

        spec = ScenarioSpec(
            name="fp", description="fp", graph_shapes=(GraphShape.CHAIN,),
            table_counts=(4,), num_metrics=2, algorithms=("RandomSampling",),
            step_checkpoints=(1,),
        )
        model = build_test_case(spec, GraphShape.CHAIN, 4, 0)
        generator = RandomPlanGenerator(model, random.Random(3))
        plans = generator.random_plans(5)
        assert frontier_fingerprint(plans) == frontier_fingerprint(
            list(reversed(plans))
        )


def _coordinate(index=0):
    return Coordinate(
        workload="chain-uniform",
        algorithm=f"Algo{index}",
        engine="arena",
        seed=1,
        alpha=None,
    )


def _entry(index=0, fingerprint=None):
    return ArchiveEntry(
        coordinate=_coordinate(index),
        fingerprint=fingerprint or ("ab" * 32),
        frontier_size=3,
    )


class TestArchive:
    def test_round_trip_via_file(self, tmp_path):
        archive = Archive([_entry(0), _entry(1, fingerprint="cd" * 32)])
        path = str(tmp_path / "archive.json")
        save_archive(archive, path)
        loaded = load_archive(path)
        assert len(loaded) == 2
        assert loaded.get(_coordinate(0)).fingerprint == "ab" * 32
        assert loaded.get(_coordinate(1)).fingerprint == "cd" * 32

    def test_entries_sorted_for_stable_diffs(self, tmp_path):
        path_a = str(tmp_path / "a.json")
        path_b = str(tmp_path / "b.json")
        save_archive(Archive([_entry(0), _entry(1)]), path_a)
        save_archive(Archive([_entry(1), _entry(0)]), path_b)
        assert open(path_a).read() == open(path_b).read()

    def test_wrong_format_rejected(self, tmp_path):
        path = str(tmp_path / "archive.json")
        path_obj = tmp_path / "archive.json"
        path_obj.write_text(json.dumps({"format": "other", "entries": []}))
        with pytest.raises(ValueError, match="format"):
            load_archive(path)

    def test_invalid_json_rejected(self, tmp_path):
        path_obj = tmp_path / "archive.json"
        path_obj.write_text("{broken")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_archive(str(path_obj))

    def test_tampered_signature_rejected_not_skipped(self, tmp_path):
        path = str(tmp_path / "archive.json")
        save_archive(Archive([_entry(0)]), path)
        data = json.load(open(path))
        data["entries"][0]["coordinate"]["algorithm"] = "Edited"
        (tmp_path / "archive.json").write_text(json.dumps(data))
        with pytest.raises(ValueError, match="signature does not match"):
            load_archive(path)

    def test_truncated_entry_rejected(self, tmp_path):
        path = str(tmp_path / "archive.json")
        save_archive(Archive([_entry(0)]), path)
        data = json.load(open(path))
        del data["entries"][0]["fingerprint"]
        (tmp_path / "archive.json").write_text(json.dumps(data))
        with pytest.raises(ValueError, match="entry #0"):
            load_archive(path)

    def test_duplicate_coordinate_rejected(self, tmp_path):
        path = str(tmp_path / "archive.json")
        save_archive(Archive([_entry(0)]), path)
        data = json.load(open(path))
        data["entries"].append(data["entries"][0])
        (tmp_path / "archive.json").write_text(json.dumps(data))
        with pytest.raises(ValueError, match="twice"):
            load_archive(path)

    def test_diff_statuses(self):
        pinned = Archive([_entry(0), _entry(1), _entry(2)])
        fresh = Archive(
            [_entry(0), _entry(1, fingerprint="ef" * 32), _entry(3)]
        )
        diff = diff_archives(pinned, fresh)
        assert not diff.ok
        assert [c.algorithm for c in diff.matches] == ["Algo0"]
        assert [c.algorithm for c, _, _ in diff.mismatches] == ["Algo1"]
        assert [c.algorithm for c in diff.missing] == ["Algo2"]
        assert [c.algorithm for c in diff.unpinned] == ["Algo3"]

    def test_drift_report_names_exact_coordinate(self):
        pinned = Archive([_entry(0)])
        fresh = Archive([_entry(0, fingerprint="ef" * 32)])
        report = diff_archives(pinned, fresh).render()
        assert "MISMATCH" in report
        assert _coordinate(0).label in report


class TestZooGrid:
    def test_grid_dimensions_meet_coverage_floor(self):
        assert len(ZOO_SHAPES) >= 5
        assert len(ZOO_STAT_MODELS) >= 3
        assert len(ZOO_ALGORITHMS) >= 8
        assert len(ZOO_ENGINES) == 2
        coords = zoo_coordinates()
        assert len(coords) == (
            len(ZOO_SHAPES)
            * len(ZOO_STAT_MODELS)
            * len(ZOO_ALGORITHMS)
            * len(ZOO_ENGINES)
        )
        assert len({c.signature() for c in coords}) == len(coords)

    def test_run_coordinate_is_deterministic(self):
        coordinate = zoo_coordinates()[0]
        first = run_coordinate(coordinate)
        second = run_coordinate(coordinate)
        assert first.fingerprint == second.fingerprint
        assert first.frontier_size == second.frontier_size > 0

    def test_dp_coordinates_carry_alpha(self):
        for coordinate in zoo_coordinates():
            if coordinate.algorithm.startswith("DP("):
                assert coordinate.alpha == 2.0
            else:
                assert coordinate.alpha is None


class TestPinnedArchive:
    def test_pinned_archive_loads_with_full_zoo_coverage(self):
        archive = load_archive(ARCHIVE_PATH)
        coverage = coverage_summary(archive)
        assert coverage["shapes"] >= 5
        assert coverage["stat_models"] >= 3
        assert coverage["algorithms"] >= 8
        assert coverage["engines"] == 2
        pinned = {entry.coordinate for entry in archive.entries()}
        assert all(coordinate in pinned for coordinate in zoo_coordinates())

    def test_sampled_coordinates_reproduce_pinned_fingerprints(self):
        # The full sweep is the CI `regress check` job; here a spread sample
        # re-proves reproducibility on every pytest run.
        archive = load_archive(ARCHIVE_PATH)
        sample = zoo_coordinates()[::27]
        for coordinate in sample:
            entry = run_coordinate(coordinate)
            pinned = archive.get(coordinate)
            assert pinned is not None, coordinate.label
            assert entry.fingerprint == pinned.fingerprint, coordinate.label

    def test_perturbed_cost_constant_fails_check_naming_coordinate(self):
        # The satellite requirement: an (intentionally wrong) change to a
        # cost constant must surface as drift at the exact coordinate.
        pinned = load_archive(ARCHIVE_PATH)
        coords = [c for c in zoo_coordinates() if c.workload == "star-minmax"][:4]
        with mock.patch.object(
            cost_model_module,
            "CostModelConfig",
            lambda: CostModelConfig(cpu_cost_per_row=0.002),
        ):
            fresh = run_zoo(coords)
        diff = diff_archives(pinned, fresh)
        assert not diff.ok
        drifted = {coordinate.label for coordinate, _, _ in diff.mismatches}
        assert any("star-minmax" in label for label in drifted)
        assert "star-minmax" in diff.render()


class TestRegressCli:
    @pytest.fixture
    def small_zoo(self, monkeypatch):
        subset = zoo_coordinates()[:6]
        monkeypatch.setattr(
            "repro.regress.zoo.zoo_coordinates", lambda: subset
        )
        return subset

    def test_record_check_lint_round_trip(self, tmp_path, small_zoo):
        path = str(tmp_path / "archive.json")
        out = cli_run(["regress", "record", "--archive", path])
        assert "recorded 6 fingerprints" in out
        out = cli_run(["regress", "check", "--archive", path])
        assert "6 match, 0 mismatch, 0 missing" in out
        out = cli_run(["regress", "lint", "--archive", path])
        assert "archive ok: 6 entries" in out

    def test_check_fails_on_drift_naming_coordinate(self, tmp_path, small_zoo):
        path = str(tmp_path / "archive.json")
        cli_run(["regress", "record", "--archive", path])
        data = json.load(open(path))
        entry = data["entries"][0]
        entry["fingerprint"] = ("0" * 63) + (
            "1" if entry["fingerprint"][-1] != "1" else "2"
        )
        (tmp_path / "archive.json").write_text(json.dumps(data))
        report_path = str(tmp_path / "report.txt")
        with pytest.raises(SystemExit) as excinfo:
            cli_run(
                ["regress", "check", "--archive", path, "--report", report_path]
            )
        message = str(excinfo.value)
        label = Coordinate.from_json_dict(entry["coordinate"]).label
        assert "MISMATCH" in message
        assert label in message
        assert label in open(report_path).read()

    def test_diff_reports_without_failing(self, tmp_path, small_zoo):
        path = str(tmp_path / "archive.json")
        cli_run(["regress", "record", "--archive", path])
        out = cli_run(["regress", "diff", "--archive", path])
        assert "6 match" in out

    def test_lint_rejects_corrupt_archive(self, tmp_path):
        path_obj = tmp_path / "archive.json"
        path_obj.write_text(json.dumps({"format": ARCHIVE_FORMAT, "entries": [{}]}))
        with pytest.raises(ValueError, match="entry #0"):
            cli_run(["regress", "lint", "--archive", str(path_obj)])

    def test_lint_fails_on_missing_zoo_coverage(self, tmp_path, small_zoo):
        path = str(tmp_path / "archive.json")
        archive = Archive([run_coordinate(small_zoo[0])])
        save_archive(archive, path)
        with pytest.raises(SystemExit, match="not pinned"):
            cli_run(["regress", "lint", "--archive", path])
