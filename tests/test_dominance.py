"""Unit tests for repro.pareto.dominance."""

import pytest

from repro.pareto.dominance import approx_dominates, dominates, strictly_dominates


class TestDominates:
    def test_lower_everywhere(self):
        assert dominates((1.0, 2.0), (2.0, 3.0))

    def test_equal_vectors_dominate_each_other(self):
        assert dominates((1.0, 2.0), (1.0, 2.0))

    def test_mixed_vectors_do_not_dominate(self):
        assert not dominates((1.0, 5.0), (2.0, 3.0))
        assert not dominates((2.0, 3.0), (1.0, 5.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))


class TestStrictlyDominates:
    def test_strictly_lower_everywhere(self):
        assert strictly_dominates((1.0, 2.0), (2.0, 3.0))

    def test_equal_vectors_do_not_strictly_dominate(self):
        assert not strictly_dominates((1.0, 2.0), (1.0, 2.0))

    def test_lower_in_one_metric_equal_elsewhere(self):
        assert strictly_dominates((1.0, 2.0), (1.0, 3.0))

    def test_asymmetry(self):
        assert strictly_dominates((1.0, 1.0), (2.0, 2.0))
        assert not strictly_dominates((2.0, 2.0), (1.0, 1.0))

    def test_single_metric_reduces_to_less_than(self):
        assert strictly_dominates((1.0,), (2.0,))
        assert not strictly_dominates((2.0,), (1.0,))
        assert not strictly_dominates((1.0,), (1.0,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            strictly_dominates((1.0,), (1.0, 2.0))


class TestApproxDominates:
    def test_alpha_one_equals_dominates(self):
        assert approx_dominates((1.0, 2.0), (1.0, 2.0), 1.0)
        assert not approx_dominates((1.1, 2.0), (1.0, 2.0), 1.0)

    def test_within_factor(self):
        assert approx_dominates((2.0, 2.0), (1.0, 1.0), 2.0)
        assert not approx_dominates((2.1, 2.0), (1.0, 1.0), 2.0)

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            approx_dominates((1.0,), (1.0,), 0.9)

    def test_zero_reference_handled(self):
        # alpha * 0 == 0, so only a zero cost can alpha-dominate a zero cost.
        assert approx_dominates((0.0,), (0.0,), 2.0)
        assert not approx_dominates((0.5,), (0.0,), 2.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            approx_dominates((1.0,), (1.0, 2.0), 2.0)

    def test_transitivity_of_dominance_sample(self):
        a, b, c = (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)
        assert dominates(a, b) and dominates(b, c) and dominates(a, c)
