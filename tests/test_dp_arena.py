"""Engine-equivalence suite for the DP(α) approximation schemes.

The vectorized :class:`~repro.baselines.dp.ArenaDPOptimizer` must be
*bit-identical* to the object-engine :class:`~repro.baselines.dp.DPOptimizer`
— same frontiers, same DP-table contents (values, tags, and order), same
``plans_built``/``steps`` statistics at every step boundary — for every α,
query shape, and operator library, including 1-table queries and NaN/inf
cardinalities.  The coordinator backend must additionally be bit-identical
to the sequential arena engine for any worker count, under injected worker
death, and across warm/cold task-cache runs.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dp import (
    ArenaDPOptimizer,
    DPOptimizer,
    make_dp_optimizer,
)
from repro.cost.model import MultiObjectiveCostModel
from repro.dist.cache import TaskCache
from repro.plans.operators import OperatorLibrary
from repro.query.generator import SHAPE_MIN_TABLES, QueryGenerator
from repro.query.join_graph import GraphShape, JoinGraph
from repro.query.query import Query
from repro.query.table import Table

ALPHAS = (1.0, 1.01, 2.0, float("inf"))

LIBRARIES = {
    "minimal": OperatorLibrary.minimal,
    "default": OperatorLibrary.default,
    "cloud": OperatorLibrary.cloud,
}


def _random_model(seed, num_tables, shape=GraphShape.CHAIN, metrics=("time", "buffer", "disk"), library="default"):
    query = QueryGenerator(rng=random.Random(seed)).generate(num_tables, shape)
    return MultiObjectiveCostModel(query, metrics=metrics, library=LIBRARIES[library]())


def _explicit_model(cardinalities, edges, metrics=("time", "buffer", "disk"), library="default"):
    tables = [
        Table(index=i, name=f"t{i}", cardinality=float(card))
        for i, card in enumerate(cardinalities)
    ]
    graph = JoinGraph(len(tables))
    for a, b, selectivity in edges:
        graph.add_edge(a, b, selectivity)
    query = Query(tables, graph, name="dp_arena_test")
    return MultiObjectiveCostModel(query, metrics=metrics, library=LIBRARIES[library]())


def _cost_key(values):
    """NaN-safe exact snapshot of a cost tuple (NaN == NaN for comparison)."""
    return tuple("nan" if math.isnan(v) else v for v in values)


def _snap(plan):
    return (_cost_key(plan.cost), plan.output_format, _cost_key((plan.cardinality,)))


def _table_state(optimizer):
    """The full DP table: per subset, the frontier's ordered snapshots."""
    return {
        tuple(sorted(rel)): [_snap(p) for p in optimizer.plan_cache.plans(rel)]
        for rel in optimizer.plan_cache.table_sets()
    }


def _statistics(optimizer):
    return (optimizer.statistics.plans_built, optimizer.statistics.steps)


def _assert_locked(reference, candidate):
    """Run both optimizers step by step and compare everything at each boundary."""
    while not (reference.finished and candidate.finished):
        reference.step()
        candidate.step()
        assert _statistics(candidate) == _statistics(reference)
        assert candidate.finished == reference.finished
        assert [_snap(p) for p in candidate.frontier()] == [
            _snap(p) for p in reference.frontier()
        ]
    assert _table_state(candidate) == _table_state(reference)


class TestEngineEquivalence:
    """object engine == arena engine, bit for bit."""

    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        num_tables=st.integers(min_value=1, max_value=5),
        shape=st.sampled_from(list(GraphShape)),
        alpha=st.sampled_from(ALPHAS),
        tasks_per_step=st.sampled_from((1, 7, 50)),
        library=st.sampled_from(sorted(LIBRARIES)),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_queries_bit_identical(
        self, seed, num_tables, shape, alpha, tasks_per_step, library
    ):
        num_tables = max(num_tables, SHAPE_MIN_TABLES[shape])
        model = _random_model(seed, num_tables, shape, library=library)
        reference = DPOptimizer(model, alpha=alpha, tasks_per_step=tasks_per_step)
        candidate = ArenaDPOptimizer(model, alpha=alpha, tasks_per_step=tasks_per_step)
        _assert_locked(reference, candidate)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_single_table_query(self, alpha):
        model = _explicit_model([42.0], [])
        reference = DPOptimizer(model, alpha=alpha)
        candidate = ArenaDPOptimizer(model, alpha=alpha)
        reference.step()
        candidate.step()
        # One step seeds the scans, discovers there are no join tasks, and
        # finishes with a non-empty frontier — in both engines.
        assert reference.finished and candidate.finished
        assert _statistics(candidate) == _statistics(reference)
        assert candidate.frontier() and reference.frontier()
        assert [_snap(p) for p in candidate.frontier()] == [
            _snap(p) for p in reference.frontier()
        ]

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("bad_card", [float("nan"), float("inf")])
    def test_nan_inf_cardinalities(self, alpha, bad_card):
        # The scalar sort-merge kernel rejects infinite page counts, so the
        # non-finite equivalence cases run on the minimal library (hash join
        # + full scan), where both engines must agree bit for bit.
        model = _explicit_model(
            [bad_card, 100.0, 10.0],
            [(0, 1, 0.5), (1, 2, 0.25)],
            metrics=("time",),
            library="minimal",
        )
        reference = DPOptimizer(model, alpha=alpha, tasks_per_step=3)
        candidate = ArenaDPOptimizer(model, alpha=alpha, tasks_per_step=3)
        _assert_locked(reference, candidate)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_nan_cardinality_default_library(self, alpha):
        model = _explicit_model([float("nan"), 100.0, 10.0], [(0, 1, 0.5), (1, 2, 0.25)])
        reference = DPOptimizer(model, alpha=alpha, tasks_per_step=5)
        candidate = ArenaDPOptimizer(model, alpha=alpha, tasks_per_step=5)
        _assert_locked(reference, candidate)

    def test_scan_seeding_charged_to_construction(self, chain_model):
        # Satellite of the eager-seeding fix: scans are built (and counted)
        # in __init__, identically in both engines, before any step() runs.
        for optimizer in (DPOptimizer(chain_model), ArenaDPOptimizer(chain_model)):
            assert optimizer.statistics.plans_built > 0
            assert optimizer.statistics.steps == 0
        assert (
            DPOptimizer(chain_model).statistics.plans_built
            == ArenaDPOptimizer(chain_model).statistics.plans_built
        )

    def test_empty_frontier_until_complete(self, chain_model):
        candidate = ArenaDPOptimizer(chain_model, alpha=2.0, tasks_per_step=1)
        candidate.step()
        assert not candidate.finished
        assert candidate.frontier() == []


class TestValidation:
    def test_alpha_below_one_rejected(self, chain_model):
        with pytest.raises(ValueError):
            ArenaDPOptimizer(chain_model, alpha=0.5)

    def test_nonpositive_tasks_per_step_rejected(self, chain_model):
        with pytest.raises(ValueError):
            ArenaDPOptimizer(chain_model, tasks_per_step=0)

    def test_unknown_backend_rejected(self, chain_model):
        with pytest.raises(ValueError):
            ArenaDPOptimizer(chain_model, backend="ray")

    def test_nonpositive_workers_rejected(self, chain_model):
        with pytest.raises(ValueError):
            ArenaDPOptimizer(chain_model, backend="coordinator", workers=0)

    def test_object_engine_rejects_coordinator_backend(self, chain_model):
        with pytest.raises(ValueError):
            make_dp_optimizer(chain_model, engine="object", backend="coordinator")

    def test_factory_resolves_engines(self, chain_model, monkeypatch):
        assert isinstance(make_dp_optimizer(chain_model), ArenaDPOptimizer)
        assert isinstance(
            make_dp_optimizer(chain_model, engine="object"), DPOptimizer
        )
        monkeypatch.setenv("REPRO_PLAN_ENGINE", "object")
        assert isinstance(make_dp_optimizer(chain_model), DPOptimizer)


class TestCoordinatorBackend:
    """coordinator backend == sequential arena engine, for any worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("alpha", [1.0, 1.01, float("inf")])
    def test_worker_counts_bit_identical(self, star_model, workers, alpha):
        sequential = ArenaDPOptimizer(star_model, alpha=alpha, tasks_per_step=13)
        coordinated = ArenaDPOptimizer(
            star_model,
            alpha=alpha,
            tasks_per_step=13,
            backend="coordinator",
            workers=workers,
        )
        _assert_locked(sequential, coordinated)

    def test_step_driven_snapshots_match_mid_run(self, cycle_model):
        # The anytime contract holds under the coordinator backend too:
        # identical statistics and frontier snapshots at every boundary
        # (including the partial final-level frontiers near the end).
        sequential = ArenaDPOptimizer(cycle_model, alpha=2.0, tasks_per_step=9)
        coordinated = ArenaDPOptimizer(
            cycle_model, alpha=2.0, tasks_per_step=9, backend="coordinator", workers=2
        )
        while not sequential.finished:
            sequential.step()
            coordinated.step()
            assert _statistics(coordinated) == _statistics(sequential)
            assert [_snap(p) for p in coordinated.frontier()] == [
                _snap(p) for p in sequential.frontier()
            ]
        assert coordinated.finished
        assert _table_state(coordinated) == _table_state(sequential)

    def test_injected_worker_death_bit_identical(self, star_model):
        sequential = ArenaDPOptimizer(star_model, alpha=1.01, tasks_per_step=50)
        while not sequential.finished:
            sequential.step()

        deaths = []

        def killer(lease):
            if lease.worker_id == "dp-worker-0" and not deaths:
                deaths.append(lease.lease_id)
                raise RuntimeError("injected worker death")

        coordinated = ArenaDPOptimizer(
            star_model,
            alpha=1.01,
            tasks_per_step=50,
            backend="coordinator",
            workers=3,
            lease_timeout=0.2,
            on_lease=killer,
        )
        while not coordinated.finished:
            coordinated.step()
        assert deaths, "the fault-injection hook never fired"
        assert _statistics(coordinated) == _statistics(sequential)
        assert _table_state(coordinated) == _table_state(sequential)

    def test_warm_and_cold_task_cache_bit_identical(self, chain_model, tmp_path):
        sequential = ArenaDPOptimizer(chain_model, alpha=1.01, tasks_per_step=25)
        while not sequential.finished:
            sequential.step()

        cache = TaskCache(str(tmp_path / "dp-cache"))
        runs = []
        for _ in range(2):
            optimizer = ArenaDPOptimizer(
                chain_model,
                alpha=1.01,
                tasks_per_step=25,
                backend="coordinator",
                workers=2,
                task_cache=cache,
            )
            while not optimizer.finished:
                optimizer.step()
            runs.append(optimizer)
        cold, warm = runs
        assert cache.stats["stores"] > 0
        assert cache.stats["hits"] > 0
        for optimizer in (cold, warm):
            assert _statistics(optimizer) == _statistics(sequential)
            assert _table_state(optimizer) == _table_state(sequential)

    def test_cache_keys_depend_on_level_alpha(self, chain_model, tmp_path):
        # Different α must never share cache entries: α enters the
        # provenance signature through level_alpha.
        cache = TaskCache(str(tmp_path / "dp-cache"))
        for alpha in (1.01, 2.0):
            optimizer = ArenaDPOptimizer(
                chain_model,
                alpha=alpha,
                backend="coordinator",
                task_cache=cache,
            )
            while not optimizer.finished:
                optimizer.step()
        second = ArenaDPOptimizer(
            chain_model, alpha=2.0, backend="coordinator", task_cache=cache
        )
        reference = ArenaDPOptimizer(chain_model, alpha=2.0)
        while not second.finished:
            second.step()
        while not reference.finished:
            reference.step()
        assert _table_state(second) == _table_state(reference)
