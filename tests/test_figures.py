"""Tests for the figure specs' wall-clock-free (step-driven) variants.

Every figure spec must have a step-driven twin so the whole figure suite can
be regression-tested deterministically in CI; ``TestStepFigureRuns`` runs a
micro-scaled instance of every one of them end-to-end through the task-graph
runner.
"""

import dataclasses

import pytest

from repro.bench import figures
from repro.bench.runner import run_scenario
from repro.bench.scenario import ScenarioScale

ALL_FIGURES = sorted(figures.FIGURE_SPECS)


class TestStepVariants:
    @pytest.mark.parametrize("figure_id", ALL_FIGURES)
    def test_every_figure_has_a_step_twin(self, figure_id):
        assert figure_id in figures.STEP_FIGURE_SPECS

    @pytest.mark.parametrize("figure_id", ALL_FIGURES)
    @pytest.mark.parametrize("scale", list(ScenarioScale))
    def test_step_variants_construct_at_all_scales(self, figure_id, scale):
        spec = figures.STEP_FIGURE_SPECS[figure_id](scale)
        assert spec.step_checkpoints == figures.STEP_CHECKPOINTS[scale]
        # Wall-clock-free: no reference time budget either — the DP
        # reference runs to completion under its step-count safety cap.
        assert spec.reference_time_budget is None
        # Grid, metrics, and algorithms match the wall-clock spec.
        wall_clock = figures.FIGURE_SPECS[figure_id](scale)
        assert spec.graph_shapes == wall_clock.graph_shapes
        assert spec.table_counts == wall_clock.table_counts
        assert spec.algorithms == wall_clock.algorithms
        assert spec.num_metrics == wall_clock.num_metrics

    def test_step_variant_accepts_explicit_checkpoints(self):
        spec = figures.step_variant(figures.figure1_spec(), step_checkpoints=(3, 9))
        assert spec.step_checkpoints == (3, 9)


class TestStepFigureRuns:
    """Every step-driven figure spec runs end-to-end (micro-scaled)."""

    @pytest.mark.parametrize("figure_id", ALL_FIGURES)
    def test_step_figure_runs_deterministically(self, figure_id):
        spec = figures.STEP_FIGURE_SPECS[figure_id](ScenarioScale.SMOKE)
        micro = dataclasses.replace(
            spec,
            graph_shapes=spec.graph_shapes[:1],
            table_counts=(min(spec.table_counts),),
            num_test_cases=1,
            step_checkpoints=(1, 2),
        )
        result = run_scenario(micro)
        assert len(result.cells) == len(micro.algorithms)
        for cell in result.cells:
            assert cell.checkpoints == (1.0, 2.0)
            assert all(error >= 1.0 for error in cell.median_errors)
        # Step-driven runs are fully deterministic: repeating the run
        # reproduces the exact result.
        assert run_scenario(micro).cells == result.cells
