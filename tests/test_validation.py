"""Unit tests for repro.plans.validation."""

import pytest

from repro.cost.model import MultiObjectiveCostModel
from repro.plans.operators import DataFormat, JoinAlgorithm, JoinOperator
from repro.plans.plan import JoinPlan, ScanPlan
from repro.plans.validation import PlanValidationError, validate_plan
from repro.query.table import Table


@pytest.fixture
def full_plan(chain_model):
    scans = [chain_model.default_scan(i) for i in range(4)]
    left = chain_model.default_join(scans[0], scans[1])
    right = chain_model.default_join(scans[2], scans[3])
    return chain_model.default_join(left, right)


class TestValidPlans:
    def test_complete_plan_validates(self, full_plan, chain_query_4, chain_model):
        validate_plan(full_plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_partial_plan_with_flag(self, chain_model, chain_query_4):
        partial = chain_model.default_join(
            chain_model.default_scan(0), chain_model.default_scan(1)
        )
        validate_plan(partial, chain_query_4, require_complete=False)

    def test_scan_only_query(self, single_table_query):
        model = MultiObjectiveCostModel(single_table_query, metrics=("time",))
        validate_plan(model.default_scan(0), single_table_query)


class TestInvalidPlans:
    def test_incomplete_plan_rejected(self, chain_model, chain_query_4):
        partial = chain_model.default_join(
            chain_model.default_scan(0), chain_model.default_scan(1)
        )
        with pytest.raises(PlanValidationError):
            validate_plan(partial, chain_query_4)

    def test_foreign_table_rejected(self, chain_model, two_table_query):
        # A plan built for the 4-table query references tables outside the
        # 2-table query.
        plan = chain_model.default_scan(3)
        with pytest.raises(PlanValidationError):
            validate_plan(plan, two_table_query, require_complete=False)

    def test_wrong_metric_count_rejected(self, full_plan, chain_query_4):
        with pytest.raises(PlanValidationError):
            validate_plan(full_plan, chain_query_4, num_metrics=5)

    def test_negative_cost_rejected(self, chain_model, chain_query_4):
        scan = chain_model.default_scan(0)
        broken = ScanPlan(
            table=scan.table,
            operator=scan.operator,
            cost=(-1.0,) * chain_model.num_metrics,
            cardinality=scan.cardinality,
        )
        with pytest.raises(PlanValidationError):
            validate_plan(broken, chain_query_4, require_complete=False)

    def test_stale_table_statistics_rejected(self, chain_model, chain_query_4):
        scan = chain_model.default_scan(0)
        stale_table = Table(index=0, name="t0", cardinality=999_999)
        broken = ScanPlan(
            table=stale_table,
            operator=scan.operator,
            cost=scan.cost,
            cardinality=scan.cardinality,
        )
        with pytest.raises(PlanValidationError):
            validate_plan(broken, chain_query_4, require_complete=False)

    def test_nested_loop_with_pipelined_inner_rejected(self, chain_model, chain_query_4):
        outer = chain_model.default_scan(0)
        inner = chain_model.default_scan(1)  # pipelined by default
        assert inner.output_format is DataFormat.PIPELINED
        bnl = JoinOperator("bnl_bad", JoinAlgorithm.BLOCK_NESTED_LOOP)
        broken = JoinPlan(
            outer=outer,
            inner=inner,
            operator=bnl,
            cost=(1.0,) * chain_model.num_metrics,
            cardinality=1.0,
        )
        with pytest.raises(PlanValidationError):
            validate_plan(broken, chain_query_4, require_complete=False)

    def test_operator_outside_library_rejected(self, chain_model, chain_query_4):
        outer = chain_model.default_scan(0)
        inner = chain_model.default_scan(1)
        foreign_operator = JoinOperator("foreign_hash", JoinAlgorithm.HASH)
        broken = JoinPlan(
            outer=outer,
            inner=inner,
            operator=foreign_operator,
            cost=(1.0,) * chain_model.num_metrics,
            cardinality=1.0,
        )
        with pytest.raises(PlanValidationError):
            validate_plan(
                broken,
                chain_query_4,
                library=chain_model.library,
                require_complete=False,
            )


class TestSearchOutputsAreValid:
    def test_random_plans_validate(self, chain_model, chain_query_4, rng):
        from repro.core.random_plans import RandomPlanGenerator

        generator = RandomPlanGenerator(chain_model, rng)
        for plan in generator.random_plans(25):
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_climbed_plans_validate(self, star_model, star_query_5, rng):
        from repro.core.pareto_climb import ParetoClimber
        from repro.core.random_plans import RandomPlanGenerator

        generator = RandomPlanGenerator(star_model, rng)
        climber = ParetoClimber(star_model)
        for _ in range(5):
            result = climber.climb(generator.random_bushy_plan())
            validate_plan(result.plan, star_query_5, star_model.library, star_model.num_metrics)
