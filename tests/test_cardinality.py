"""Unit tests for repro.cost.cardinality."""

import pytest

from repro.cost.cardinality import CardinalityEstimator
from repro.plans.operators import ScanAlgorithm, ScanOperator


@pytest.fixture
def estimator(chain_query_4):
    return CardinalityEstimator(chain_query_4)


class TestScanCardinality:
    def test_full_scan_returns_table_cardinality(self, estimator, chain_query_4):
        scan_op = ScanOperator("seq")
        table = chain_query_4.table(1)
        assert estimator.scan_cardinality(table, scan_op) == table.cardinality

    def test_sampling_scan_scales_cardinality(self, estimator, chain_query_4):
        sample_op = ScanOperator("sample", ScanAlgorithm.SAMPLE, sampling_rate=0.1)
        table = chain_query_4.table(1)
        assert estimator.scan_cardinality(table, sample_op) == pytest.approx(
            table.cardinality * 0.1
        )

    def test_scan_cardinality_at_least_one(self, estimator, chain_query_4):
        tiny_sample = ScanOperator("sample", ScanAlgorithm.SAMPLE, sampling_rate=0.001)
        table = chain_query_4.table(0)  # 100 rows * 0.001 = 0.1 → floored to 1
        assert estimator.scan_cardinality(table, tiny_sample) == 1.0


class TestJoinCardinality:
    def test_connected_join_uses_selectivity(self, estimator, chain_query_4):
        # Tables 0 and 1 are connected with selectivity 0.01.
        result = estimator.join_cardinality(
            frozenset({0}), frozenset({1}), 100.0, 10_000.0
        )
        assert result == pytest.approx(100 * 10_000 * 0.01)

    def test_cartesian_product_without_predicate(self, estimator):
        # Tables 0 and 2 are not directly connected in the chain.
        result = estimator.join_cardinality(frozenset({0}), frozenset({2}), 100.0, 500.0)
        assert result == pytest.approx(100 * 500)

    def test_multiple_predicates_multiply(self, cycle_query_6):
        estimator = CardinalityEstimator(cycle_query_6)
        # Joining {0,1,2} with {3,4,5} crosses edges (2,3) and (5,0).
        result = estimator.join_cardinality(
            frozenset({0, 1, 2}), frozenset({3, 4, 5}), 1_000.0, 1_000.0
        )
        assert result == pytest.approx(1_000 * 1_000 * 0.002 * 0.02)

    def test_join_cardinality_at_least_one(self, estimator):
        result = estimator.join_cardinality(frozenset({0}), frozenset({1}), 1.0, 1.0)
        assert result >= 1.0

    def test_overlapping_sets_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.join_cardinality(frozenset({0, 1}), frozenset({1, 2}), 10.0, 10.0)

    def test_query_property(self, estimator, chain_query_4):
        assert estimator.query is chain_query_4
