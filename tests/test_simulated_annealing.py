"""Tests for the SA baseline (multi-objective SAIO simulated annealing)."""

import random

import pytest

from repro.baselines.simulated_annealing import SimulatedAnnealingOptimizer
from repro.pareto.dominance import strictly_dominates
from repro.plans.validation import validate_plan


@pytest.fixture
def optimizer(chain_model):
    return SimulatedAnnealingOptimizer(chain_model, rng=random.Random(4))


class TestConstruction:
    def test_invalid_parameters_rejected(self, chain_model):
        with pytest.raises(ValueError):
            SimulatedAnnealingOptimizer(chain_model, initial_temperature_factor=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingOptimizer(chain_model, cooling_rate=1.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingOptimizer(chain_model, cooling_rate=0.0)

    def test_start_plan_seeds_archive(self, chain_model, rng):
        from repro.core.random_plans import RandomPlanGenerator

        start = RandomPlanGenerator(chain_model, rng).random_bushy_plan()
        optimizer = SimulatedAnnealingOptimizer(
            chain_model, rng=random.Random(1), start_plan=start
        )
        assert optimizer.current_plan is start
        assert optimizer.frontier()


class TestAnnealing:
    def test_step_produces_plans(self, optimizer, chain_query_4, chain_model):
        optimizer.step()
        frontier = optimizer.frontier()
        assert frontier
        for plan in frontier:
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_temperature_decreases(self, optimizer):
        optimizer.step()
        first = optimizer.temperature
        optimizer.step()
        assert optimizer.temperature < first

    def test_restart_after_freezing(self, chain_model):
        optimizer = SimulatedAnnealingOptimizer(
            chain_model,
            rng=random.Random(2),
            cooling_rate=0.5,
            frozen_temperature=0.5,
            initial_temperature_factor=1.0,
        )
        for _ in range(6):
            optimizer.step()
        # After freezing the temperature is reset to its initial value on restart.
        assert optimizer.temperature > 0.0
        assert optimizer.frontier()

    def test_archive_is_non_dominated(self, optimizer):
        optimizer.run(max_steps=10)
        frontier = optimizer.frontier()
        for first in frontier:
            for second in frontier:
                if first is second:
                    continue
                assert not strictly_dominates(first.cost, second.cost)

    def test_statistics_updated(self, optimizer):
        optimizer.run(max_steps=3)
        assert optimizer.statistics.steps == 3
        assert optimizer.statistics.plans_built > 0

    def test_moves_per_stage_controls_work(self, chain_model):
        small = SimulatedAnnealingOptimizer(
            chain_model, rng=random.Random(1), moves_per_stage=2
        )
        large = SimulatedAnnealingOptimizer(
            chain_model, rng=random.Random(1), moves_per_stage=50
        )
        small.step()
        large.step()
        assert large.statistics.plans_built > small.statistics.plans_built

    def test_best_cost_does_not_regress_with_more_steps(self, chain_model):
        optimizer = SimulatedAnnealingOptimizer(chain_model, rng=random.Random(6))
        optimizer.run(max_steps=3)
        best_early = min(plan.cost[0] for plan in optimizer.frontier())
        optimizer.run(max_steps=10)
        best_late = min(plan.cost[0] for plan in optimizer.frontier())
        assert best_late <= best_early
