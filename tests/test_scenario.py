"""Tests for repro.bench.scenario and repro.bench.figures (scenario specs)."""

import pytest

from repro.baselines import available_algorithms
from repro.bench import figures
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.query.catalog import job_sample_catalog
from repro.query.generator import CardinalityModel, SelectivityModel
from repro.query.join_graph import GraphShape


def _minimal_spec(**overrides):
    defaults = dict(
        name="unit",
        description="unit-test scenario",
        graph_shapes=(GraphShape.CHAIN,),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RMQ",),
        checkpoints=(0.1, 0.2),
        time_budget=0.2,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestScenarioSpecValidation:
    def test_valid_spec(self):
        spec = _minimal_spec()
        assert spec.num_cells == 1

    def test_empty_shapes_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(graph_shapes=())

    def test_tiny_table_count_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(table_counts=(1,))

    def test_bad_metric_count_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(num_metrics=0)
        with pytest.raises(ValueError):
            _minimal_spec(num_metrics=4)

    def test_empty_algorithms_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(algorithms=())

    def test_unsorted_checkpoints_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(checkpoints=(0.2, 0.1))

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(time_budget=0.0)

    def test_error_cap_below_one_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(error_cap=0.5)

    def test_workers_default_is_sequential(self):
        assert _minimal_spec().workers == 1

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(workers=0)

    def test_step_checkpoints_accepted(self):
        spec = _minimal_spec(step_checkpoints=(2, 4, 8))
        assert spec.step_checkpoints == (2, 4, 8)

    def test_invalid_step_checkpoints_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(step_checkpoints=())
        with pytest.raises(ValueError):
            _minimal_spec(step_checkpoints=(0, 2))
        with pytest.raises(ValueError):
            _minimal_spec(step_checkpoints=(4, 2))

    def test_granularity_accepted(self):
        assert _minimal_spec().granularity == "auto"
        assert _minimal_spec(granularity="cell").granularity == "cell"
        assert _minimal_spec(granularity="case").granularity == "case"

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(granularity="query")

    def test_backend_accepted(self):
        assert _minimal_spec().backend == "local"
        assert _minimal_spec(backend="coordinator").backend == "coordinator"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            _minimal_spec(backend="cluster")

    def test_from_json_defaults_for_old_payloads(self):
        # Payloads written before the coordinator PR carry neither
        # granularity nor backend; they must load with the old semantics.
        data = _minimal_spec().to_json_dict()
        del data["granularity"]
        del data["backend"]
        spec = ScenarioSpec.from_json_dict(data)
        assert spec.granularity == "cell"
        assert spec.backend == "local"

    def test_json_round_trip(self):
        spec = _minimal_spec(step_checkpoints=(2, 4), granularity="case")
        assert ScenarioSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_from_json_defaults_for_pre_zoo_payloads(self):
        # Payloads written before the workload-zoo PR carry neither the
        # cardinality model nor a catalog; they must load unchanged.
        data = _minimal_spec().to_json_dict()
        del data["cardinality_model"]
        del data["catalog_json"]
        spec = ScenarioSpec.from_json_dict(data)
        assert spec.cardinality_model is CardinalityModel.UNIFORM
        assert spec.catalog_json is None

    def test_workload_zoo_fields_round_trip(self):
        import json

        catalog_json = json.dumps(job_sample_catalog().to_json_dict())
        spec = _minimal_spec(
            cardinality_model=CardinalityModel.ZIPF, catalog_json=catalog_json
        )
        assert ScenarioSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_invalid_catalog_json_rejected(self):
        with pytest.raises(ValueError, match="catalog_json"):
            _minimal_spec(catalog_json="{not json")
        with pytest.raises(ValueError, match="catalog_json"):
            _minimal_spec(catalog_json="[1, 2]")

    def test_with_scale_overrides(self):
        spec = _minimal_spec()
        modified = spec.with_scale_overrides(
            table_counts=(4, 6), num_test_cases=7, time_budget=1.0,
            checkpoints=(0.5, 1.0), nsga_population=10, scale=ScenarioScale.SMOKE,
        )
        assert modified.table_counts == (4, 6)
        assert modified.num_test_cases == 7
        assert modified.scale is ScenarioScale.SMOKE
        # The original is unchanged (frozen dataclass semantics).
        assert spec.table_counts == (4,)


class TestFigureSpecs:
    @pytest.mark.parametrize("figure_id", sorted(figures.FIGURE_SPECS))
    @pytest.mark.parametrize("scale", list(ScenarioScale))
    def test_all_specs_construct_at_all_scales(self, figure_id, scale):
        spec = figures.FIGURE_SPECS[figure_id](scale)
        assert spec.name == figure_id
        assert spec.scale is scale
        assert spec.checkpoints[-1] == pytest.approx(spec.time_budget)

    def test_algorithms_are_registered(self):
        registered = set(available_algorithms())
        for constructor in figures.FIGURE_SPECS.values():
            spec = constructor(ScenarioScale.SMOKE)
            assert set(spec.algorithms) <= registered
            if spec.reference_algorithm is not None:
                assert spec.reference_algorithm in registered

    def test_paper_scale_matches_paper_parameters(self):
        spec = figures.figure1_spec(ScenarioScale.PAPER)
        assert spec.table_counts == (10, 25, 50, 75, 100)
        assert spec.num_test_cases == 20
        assert spec.time_budget == pytest.approx(3.0)
        assert spec.nsga_population == 200
        assert spec.num_metrics == 2
        spec2 = figures.figure2_spec(ScenarioScale.PAPER)
        assert spec2.num_metrics == 3

    def test_minmax_figures_use_minmax_selectivities(self):
        assert figures.figure4_spec().selectivity_model is SelectivityModel.MINMAX
        assert figures.figure5_spec().selectivity_model is SelectivityModel.MINMAX
        assert figures.figure1_spec().selectivity_model is SelectivityModel.STEINBRUNN

    def test_long_budget_figures_cap_error(self):
        assert figures.figure6_spec().error_cap == pytest.approx(1e10)
        assert figures.figure7_spec().error_cap == pytest.approx(1e10)
        assert figures.figure6_spec(ScenarioScale.PAPER).time_budget == pytest.approx(30.0)

    def test_precise_figures_use_dp_reference(self):
        assert figures.figure8_spec().reference_algorithm == "DP(1.01)"
        assert figures.figure9_spec().reference_algorithm == "DP(1.01)"
        assert figures.figure8_spec(ScenarioScale.PAPER).table_counts == (4, 8)

    def test_ablation_specs_use_rmq_variants(self):
        spec = figures.ablation_rmq_spec()
        assert "RMQ" in spec.algorithms
        assert "RMQ-NoCache" in spec.algorithms
        alpha_spec = figures.ablation_alpha_spec()
        assert "RMQ-AlphaFixed1" in alpha_spec.algorithms

    def test_all_shapes_covered_by_grid_figures(self):
        spec = figures.figure1_spec()
        assert set(spec.graph_shapes) == {
            GraphShape.CHAIN,
            GraphShape.CYCLE,
            GraphShape.STAR,
        }
