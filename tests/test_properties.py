"""Property-based tests (hypothesis) for the core data structures and invariants.

These tests check algebraic properties that must hold for *any* input, not
just the hand-picked fixtures: dominance is a partial order, the approximation
error is consistent with α-dominance, frontier containers never keep dominated
entries, plan costs are monotone under sub-plan improvement, and the cost
model produces well-formed vectors for arbitrary random plans.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.model import MultiObjectiveCostModel
from repro.core.plan_cache import PlanCache
from repro.core.random_plans import RandomPlanGenerator
from repro.pareto.dominance import approx_dominates, dominates, strictly_dominates
from repro.pareto.epsilon import approximation_error, is_alpha_approximation
from repro.pareto.frontier import ParetoFrontier, pareto_filter
from repro.pareto.hypervolume import hypervolume
from repro.plans.validation import validate_plan
from repro.query.generator import SHAPE_MIN_TABLES, QueryGenerator
from repro.query.join_graph import GraphShape

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
costs2 = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
costs3 = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
# Strictly positive variant: the approximation-error indicator floors zero
# cost components (to stay finite), so its equivalence with exact
# α-dominance only holds away from exact zeros.
positive_costs3 = st.tuples(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
)
positive_cost_lists = st.lists(positive_costs3, min_size=1, max_size=30)
cost_lists = st.lists(costs3, min_size=1, max_size=30)
alphas = st.floats(min_value=1.0, max_value=100.0, allow_nan=False)


# ---------------------------------------------------------------------------
# Dominance properties
# ---------------------------------------------------------------------------
class TestDominanceProperties:
    @given(costs3)
    def test_dominance_is_reflexive(self, cost):
        assert dominates(cost, cost)
        assert not strictly_dominates(cost, cost)

    @given(costs3, costs3)
    def test_strict_dominance_is_antisymmetric(self, first, second):
        if strictly_dominates(first, second):
            assert not strictly_dominates(second, first)

    @given(costs3, costs3, costs3)
    def test_dominance_is_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(costs3, costs3)
    def test_strict_dominance_implies_dominance(self, first, second):
        if strictly_dominates(first, second):
            assert dominates(first, second)

    @given(costs3, costs3, alphas)
    def test_dominance_implies_alpha_dominance(self, first, second, alpha):
        if dominates(first, second):
            assert approx_dominates(first, second, alpha)

    @given(costs3, costs3, alphas, alphas)
    def test_alpha_dominance_monotone_in_alpha(self, first, second, alpha_a, alpha_b):
        small, large = min(alpha_a, alpha_b), max(alpha_a, alpha_b)
        if approx_dominates(first, second, small):
            assert approx_dominates(first, second, large)


# ---------------------------------------------------------------------------
# Frontier properties
# ---------------------------------------------------------------------------
class TestFrontierProperties:
    @given(cost_lists)
    def test_pareto_filter_is_mutually_non_dominated(self, costs):
        front = pareto_filter(costs)
        for first in front:
            for second in front:
                if first != second:
                    assert not strictly_dominates(first, second)

    @given(cost_lists)
    def test_pareto_filter_covers_input(self, costs):
        front = pareto_filter(costs)
        for cost in costs:
            assert any(dominates(kept, cost) for kept in front)

    @given(cost_lists, alphas)
    def test_frontier_insertion_order_does_not_break_coverage(self, costs, alpha):
        frontier: ParetoFrontier = ParetoFrontier(alpha=alpha)
        for cost in costs:
            frontier.insert(tuple(cost))
        kept = frontier.items()
        assert kept
        for cost in costs:
            assert any(approx_dominates(item, cost, alpha) for item in kept)

    @given(cost_lists)
    def test_approximation_error_of_subset_is_one_when_subset_is_front(self, costs):
        front = pareto_filter(costs)
        assert approximation_error(front, costs) <= 1.0 + 1e-12

    @given(positive_cost_lists, positive_cost_lists)
    def test_error_consistent_with_alpha_coverage(self, produced, reference):
        error = approximation_error(produced, reference)
        if error != float("inf"):
            assert is_alpha_approximation(produced, reference, error * (1 + 1e-9))

    @given(cost_lists, costs3)
    def test_adding_a_point_never_increases_error(self, produced, extra):
        reference = produced  # judge against the produced set itself
        base_error = approximation_error(produced, reference)
        extended_error = approximation_error(list(produced) + [extra], reference)
        assert extended_error <= base_error + 1e-12


# ---------------------------------------------------------------------------
# Hypervolume properties
# ---------------------------------------------------------------------------
class TestHypervolumeProperties:
    @given(st.lists(costs2, min_size=0, max_size=15))
    def test_hypervolume_non_negative_and_bounded(self, costs):
        reference = (1e6 + 1.0, 1e6 + 1.0)
        volume = hypervolume(costs, reference)
        assert volume >= 0.0
        # Allow for floating-point accumulation when the union nearly fills
        # the whole reference box.
        assert volume <= reference[0] * reference[1] * (1 + 1e-9)

    @given(st.lists(costs2, min_size=1, max_size=12), costs2)
    def test_hypervolume_monotone_under_union(self, costs, extra):
        reference = (1e6 + 1.0, 1e6 + 1.0)
        assert hypervolume(costs + [extra], reference) >= hypervolume(costs, reference) - 1e-6


# ---------------------------------------------------------------------------
# Plan / cost model properties on random queries and plans
# ---------------------------------------------------------------------------
class TestPlanProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_tables=st.integers(min_value=2, max_value=9),
        shape=st.sampled_from(list(GraphShape)),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_plans_are_valid_and_costs_well_formed(self, seed, num_tables, shape):
        num_tables = max(num_tables, SHAPE_MIN_TABLES[shape])
        rng = random.Random(seed)
        query = QueryGenerator(rng=rng).generate(num_tables, shape)
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
        plan = RandomPlanGenerator(model, rng).random_bushy_plan()
        validate_plan(plan, query, model.library, model.num_metrics)
        assert all(value >= 0 for value in plan.cost)
        assert plan.cardinality >= 1.0
        # Cost of the whole plan is at least the cost of any sub-plan
        # (additive non-negative node contributions).
        for node in plan.iter_nodes():
            for metric_index in range(model.num_metrics):
                assert plan.cost[metric_index] >= node.cost[metric_index] - 1e-9

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        alpha=st.floats(min_value=1.0, max_value=30.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_plan_cache_coverage_property(self, seed, alpha):
        """Every plan offered to the cache is α-covered by a cached plan."""
        rng = random.Random(seed)
        query = QueryGenerator(rng=rng).generate(5, GraphShape.CHAIN)
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer"))
        generator = RandomPlanGenerator(model, rng)
        cache = PlanCache()
        plans = [generator.random_bushy_plan() for _ in range(15)]
        for plan in plans:
            cache.insert(plan, alpha=alpha)
        cached = cache.plans(query.relations)
        for plan in plans:
            same_format = [p for p in cached if p.output_format is plan.output_format]
            assert any(approx_dominates(p.cost, plan.cost, alpha) for p in same_format)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_climb_never_worsens_cost(self, seed):
        from repro.core.pareto_climb import ParetoClimber

        rng = random.Random(seed)
        query = QueryGenerator(rng=rng).generate(6, GraphShape.CYCLE)
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
        start = RandomPlanGenerator(model, rng).random_bushy_plan()
        result = ParetoClimber(model).climb(start)
        assert dominates(result.plan.cost, start.cost)
        validate_plan(result.plan, query, model.library, model.num_metrics)
