"""Unit tests for repro.query.table."""

import pytest

from repro.query.table import DEFAULT_ROW_WIDTH_BYTES, PAGE_SIZE_BYTES, Table


class TestTableConstruction:
    def test_basic_attributes(self):
        table = Table(index=3, name="orders", cardinality=1_000, row_width=200)
        assert table.index == 3
        assert table.name == "orders"
        assert table.cardinality == 1_000
        assert table.row_width == 200

    def test_default_row_width(self):
        table = Table(index=0, name="t", cardinality=10)
        assert table.row_width == DEFAULT_ROW_WIDTH_BYTES

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Table(index=-1, name="t", cardinality=10)

    def test_zero_cardinality_rejected(self):
        with pytest.raises(ValueError):
            Table(index=0, name="t", cardinality=0)

    def test_negative_row_width_rejected(self):
        with pytest.raises(ValueError):
            Table(index=0, name="t", cardinality=10, row_width=-5)

    def test_tables_are_hashable_and_frozen(self):
        table = Table(index=0, name="t", cardinality=10)
        assert hash(table) == hash(Table(index=0, name="t", cardinality=10))
        with pytest.raises(AttributeError):
            table.cardinality = 20  # type: ignore[misc]


class TestTableDerivedSizes:
    def test_bytes(self):
        table = Table(index=0, name="t", cardinality=1_000, row_width=100)
        assert table.bytes == 100_000

    def test_pages_matches_bytes_over_page_size(self):
        table = Table(index=0, name="t", cardinality=100_000, row_width=100)
        assert table.pages == pytest.approx(100_000 * 100 / PAGE_SIZE_BYTES)

    def test_pages_at_least_one(self):
        tiny = Table(index=0, name="t", cardinality=1, row_width=1)
        assert tiny.pages == 1.0

    def test_pages_monotone_in_cardinality(self):
        small = Table(index=0, name="s", cardinality=1_000)
        large = Table(index=1, name="l", cardinality=100_000)
        assert large.pages > small.pages
