"""Unit tests for repro.query.query."""

import pytest

from repro.query.join_graph import JoinGraph
from repro.query.query import Query
from repro.query.table import Table

from tests.conftest import build_query


class TestQueryConstruction:
    def test_basic_query(self, chain_query_4):
        assert chain_query_4.num_tables == 4
        assert chain_query_4.relations == frozenset({0, 1, 2, 3})
        assert chain_query_4.table(1).cardinality == 10_000

    def test_empty_table_list_rejected(self):
        with pytest.raises(ValueError):
            Query([], JoinGraph(1))

    def test_misordered_tables_rejected(self):
        tables = [
            Table(index=1, name="a", cardinality=10),
            Table(index=0, name="b", cardinality=10),
        ]
        with pytest.raises(ValueError):
            Query(tables, JoinGraph(2))

    def test_graph_size_mismatch_rejected(self):
        tables = [Table(index=0, name="a", cardinality=10)]
        with pytest.raises(ValueError):
            Query(tables, JoinGraph(2))

    def test_tables_tuple_is_readonly_copy(self, chain_query_4):
        tables = chain_query_4.tables
        assert isinstance(tables, tuple)
        assert len(tables) == 4


class TestQueryAccessors:
    def test_cardinality_shortcut(self, chain_query_4):
        assert chain_query_4.cardinality(0) == 100
        assert chain_query_4.cardinality(3) == 2_000

    def test_selectivity_between_delegates_to_graph(self, chain_query_4):
        assert chain_query_4.selectivity_between({0}, {1}) == pytest.approx(0.01)
        assert chain_query_4.selectivity_between({0}, {3}) == 1.0

    def test_statistics_summary(self, chain_query_4):
        statistics = chain_query_4.statistics()
        assert statistics["num_tables"] == 4
        assert statistics["num_predicates"] == 3
        assert statistics["min_cardinality"] == 100
        assert statistics["max_cardinality"] == 10_000

    def test_single_table_query(self, single_table_query):
        assert single_table_query.num_tables == 1
        assert single_table_query.relations == frozenset({0})

    def test_build_query_helper(self):
        query = build_query([10, 20], [(0, 1, 0.5)])
        assert query.num_tables == 2
        assert query.selectivity_between({0}, {1}) == 0.5
