"""Tests for repro.bench.anytime (checkpointed evaluation)."""

import random

import pytest

from repro.baselines.random_sampling import RandomSamplingOptimizer
from repro.bench.anytime import CheckpointRecord, evaluate_anytime, evaluate_steps
from repro.baselines.dp import DPOptimizer


@pytest.fixture
def sampler(chain_model):
    return RandomSamplingOptimizer(chain_model, rng=random.Random(1), plans_per_step=2)


class TestEvaluateSteps:
    def test_records_match_checkpoints(self, sampler):
        records = evaluate_steps(sampler, [1, 3, 5])
        assert [record.checkpoint for record in records] == [1.0, 3.0, 5.0]
        assert [record.steps for record in records] == [1, 3, 5]

    def test_frontier_sizes_monotone_for_archiving_optimizer(self, sampler):
        records = evaluate_steps(sampler, [1, 5, 20])
        sizes = [record.frontier_size for record in records]
        assert sizes[0] >= 1
        # Not strictly monotone (archive can shrink via domination) but the
        # snapshots must always be non-empty once a step happened.
        assert all(size >= 1 for size in sizes)

    def test_finished_optimizer_stops_early(self, two_metric_model):
        dp = DPOptimizer(two_metric_model, alpha=2.0, tasks_per_step=10_000)
        records = evaluate_steps(dp, [1, 2, 100])
        assert dp.finished
        assert records[-1].frontier_size > 0

    def test_invalid_checkpoints_rejected(self, sampler):
        with pytest.raises(ValueError):
            evaluate_steps(sampler, [])
        with pytest.raises(ValueError):
            evaluate_steps(sampler, [5, 1])
        with pytest.raises(ValueError):
            evaluate_steps(sampler, [-1, 2])

    def test_record_fields(self, sampler):
        (record,) = evaluate_steps(sampler, [2])
        assert isinstance(record, CheckpointRecord)
        assert record.elapsed >= 0.0
        assert all(isinstance(cost, tuple) for cost in record.frontier_costs)


class TestEvaluateAnytime:
    def test_all_checkpoints_recorded(self, sampler):
        records = evaluate_anytime(sampler, [0.02, 0.05], time_budget=0.05)
        assert len(records) == 2
        assert records[0].checkpoint == pytest.approx(0.02)
        assert records[1].checkpoint == pytest.approx(0.05)

    def test_budget_defaults_to_last_checkpoint(self, sampler):
        records = evaluate_anytime(sampler, [0.02, 0.04])
        assert len(records) == 2
        assert sampler.statistics.steps >= 1

    def test_snapshots_taken_even_if_budget_tiny(self, sampler):
        records = evaluate_anytime(sampler, [0.001], time_budget=0.001)
        assert len(records) == 1

    def test_invalid_checkpoints_rejected(self, sampler):
        with pytest.raises(ValueError):
            evaluate_anytime(sampler, [])
        with pytest.raises(ValueError):
            evaluate_anytime(sampler, [0.2, 0.1])

    def test_later_checkpoints_have_at_least_as_many_steps(self, sampler):
        records = evaluate_anytime(sampler, [0.01, 0.03, 0.06], time_budget=0.06)
        steps = [record.steps for record in records]
        assert steps == sorted(steps)


class FakeClock:
    """Deterministic clock: returns scripted values, then repeats the last."""

    def __init__(self, values):
        self._values = list(values)

    def __call__(self):
        if len(self._values) > 1:
            return self._values.pop(0)
        return self._values[0]


class TestBudgetBoundary:
    """Regression tests: a checkpoint that falls exactly on the budget
    boundary is snapshotted exactly once — by the in-loop scan, never again
    by the post-loop flush."""

    def test_checkpoint_on_budget_boundary_snapshotted_once(self, sampler):
        # start=0.0; elapsed 0.0 (step), 1.0 (snapshot cp1, step),
        # 2.0 (snapshot cp2 == budget, stop).
        clock = FakeClock([0.0, 0.0, 1.0, 2.0])
        records = evaluate_anytime(sampler, [1.0, 2.0], time_budget=2.0, clock=clock)
        assert [record.checkpoint for record in records] == [1.0, 2.0]

    def test_budget_break_at_checkpoint_does_not_duplicate_flush(self, sampler):
        # Budget equals the first checkpoint: the tick at elapsed 1.0
        # snapshots cp1 and the budget stops the run; only cp2 is flushed.
        clock = FakeClock([0.0, 0.0, 1.0])
        records = evaluate_anytime(sampler, [1.0, 2.0], time_budget=1.0, clock=clock)
        assert [record.checkpoint for record in records] == [1.0, 2.0]
        # The flushed record reuses the elapsed of the final tick.
        assert records[1].elapsed == records[0].elapsed

    def test_all_checkpoints_unique_when_budget_is_last_checkpoint(self, sampler):
        clock = FakeClock([0.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0])
        records = evaluate_anytime(sampler, [1.0, 2.0, 3.0], clock=clock)
        checkpoints = [record.checkpoint for record in records]
        assert checkpoints == [1.0, 2.0, 3.0]
        assert len(set(checkpoints)) == len(checkpoints)

    def test_finished_optimizer_flushes_each_remaining_checkpoint_once(
        self, two_metric_model
    ):
        dp = DPOptimizer(two_metric_model, alpha=2.0, tasks_per_step=10_000)
        records = evaluate_anytime(dp, [10.0, 20.0], time_budget=30.0)
        assert dp.finished
        assert [record.checkpoint for record in records] == [10.0, 20.0]

    def test_finishing_step_still_snapshots_with_fresh_elapsed(self, two_metric_model):
        # A step that crosses a checkpoint *and* finishes the optimizer must
        # still be followed by one tick, so the snapshot carries the elapsed
        # measured after that step — not the stale pre-step value.
        dp = DPOptimizer(two_metric_model, alpha=2.0, tasks_per_step=10_000)
        clock = FakeClock([0.0, 0.5, 2.0])
        records = evaluate_anytime(dp, [1.0], time_budget=5.0, clock=clock)
        assert [record.checkpoint for record in records] == [1.0]
        assert records[0].elapsed == 2.0
