"""Unit tests for repro.plans.plan."""

import pytest

from repro.plans.operators import DataFormat
from repro.plans.plan import JoinPlan, Plan, ScanPlan


@pytest.fixture
def scans(chain_model):
    return [chain_model.default_scan(i) for i in range(4)]


class TestScanPlan:
    def test_scan_attributes(self, chain_model):
        scan = chain_model.default_scan(2)
        assert isinstance(scan, ScanPlan)
        assert not scan.is_join
        assert scan.rel == frozenset({2})
        assert scan.num_tables == 1
        assert scan.height == 1
        assert scan.num_nodes == 1
        assert scan.cardinality == chain_model.query.cardinality(2)
        assert len(scan.cost) == chain_model.num_metrics

    def test_scan_signature(self, chain_model):
        scan = chain_model.default_scan(1)
        assert scan.join_order_signature() == ("scan", 1)

    def test_iter_nodes_single(self, chain_model):
        scan = chain_model.default_scan(0)
        assert list(scan.iter_nodes()) == [scan]


class TestJoinPlan:
    def test_join_attributes(self, chain_model, scans):
        join = chain_model.default_join(scans[0], scans[1])
        assert isinstance(join, JoinPlan)
        assert join.is_join
        assert join.rel == frozenset({0, 1})
        assert join.num_tables == 2
        assert join.height == 2
        assert join.num_nodes == 3
        assert join.outer is scans[0]
        assert join.inner is scans[1]

    def test_join_of_joins(self, chain_model, scans):
        left = chain_model.default_join(scans[0], scans[1])
        right = chain_model.default_join(scans[2], scans[3])
        bushy = chain_model.default_join(left, right)
        assert bushy.rel == frozenset({0, 1, 2, 3})
        assert bushy.height == 3
        assert bushy.num_nodes == 7

    def test_overlapping_children_rejected(self, chain_model, scans):
        join = chain_model.default_join(scans[0], scans[1])
        with pytest.raises(ValueError):
            chain_model.default_join(join, scans[1])

    def test_iter_nodes_postorder(self, chain_model, scans):
        join = chain_model.default_join(scans[0], scans[1])
        nodes = list(join.iter_nodes())
        assert nodes == [scans[0], scans[1], join]

    def test_join_order_signature_distinguishes_structure(self, chain_model, scans):
        left_deep = chain_model.default_join(
            chain_model.default_join(scans[0], scans[1]), scans[2]
        )
        right_deep = chain_model.default_join(
            scans[0], chain_model.default_join(scans[1], scans[2])
        )
        assert left_deep.join_order_signature() != right_deep.join_order_signature()

    def test_signature_ignores_operators(self, chain_model, scans):
        operators = chain_model.join_operators(scans[0], scans[1])
        assert len(operators) >= 2
        first = chain_model.make_join(scans[0], scans[1], operators[0])
        second = chain_model.make_join(scans[0], scans[1], operators[1])
        assert first.join_order_signature() == second.join_order_signature()

    def test_output_format_follows_operator(self, chain_model, scans):
        for operator in chain_model.join_operators(scans[0], scans[1]):
            join = chain_model.make_join(scans[0], scans[1], operator)
            assert join.output_format is operator.output_format
            assert isinstance(join.output_format, DataFormat)


class TestStructuralEquality:
    def test_equal_plans(self, chain_model, scans):
        first = chain_model.default_join(scans[0], scans[1])
        second = chain_model.default_join(
            chain_model.default_scan(0), chain_model.default_scan(1)
        )
        assert first.structurally_equal(second)

    def test_different_operator_not_equal(self, chain_model, scans):
        operators = chain_model.join_operators(scans[0], scans[1])
        first = chain_model.make_join(scans[0], scans[1], operators[0])
        second = chain_model.make_join(scans[0], scans[1], operators[1])
        assert not first.structurally_equal(second)

    def test_scan_vs_join_not_equal(self, chain_model, scans):
        join = chain_model.default_join(scans[0], scans[1])
        assert not scans[0].structurally_equal(join)
        assert not join.structurally_equal(scans[0])

    def test_base_plan_is_abstract_interface(self):
        plan = Plan(frozenset({0}), (1.0,), 1.0, DataFormat.PIPELINED)
        with pytest.raises(NotImplementedError):
            _ = plan.is_join
        with pytest.raises(NotImplementedError):
            plan.join_order_signature()
