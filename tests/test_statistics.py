"""Tests for repro.bench.statistics (Figure 3 statistics)."""

import pytest

from repro.bench.statistics import Figure3Result, run_figure3_statistics
from repro.query.join_graph import GraphShape


@pytest.fixture(scope="module")
def small_figure3():
    return run_figure3_statistics(
        shapes=(GraphShape.CHAIN, GraphShape.STAR),
        table_counts=(4, 8),
        num_test_cases=2,
        iterations_per_case=3,
        seed=11,
    )


class TestFigure3Statistics:
    def test_result_covers_grid(self, small_figure3):
        assert set(small_figure3.median_path_length) == {
            (GraphShape.CHAIN, 4),
            (GraphShape.CHAIN, 8),
            (GraphShape.STAR, 4),
            (GraphShape.STAR, 8),
        }
        assert set(small_figure3.median_pareto_plans) == set(
            small_figure3.median_path_length
        )

    def test_path_lengths_are_non_negative_and_small(self, small_figure3):
        for value in small_figure3.median_path_length.values():
            assert 0 <= value < 50

    def test_pareto_plan_counts_positive(self, small_figure3):
        for value in small_figure3.median_pareto_plans.values():
            assert value >= 1

    def test_report_formatting(self, small_figure3):
        report = small_figure3.format_report()
        assert "path length" in report
        assert "chain" in report
        assert str(8) in report

    def test_result_type(self, small_figure3):
        assert isinstance(small_figure3, Figure3Result)

    def test_larger_queries_have_no_shorter_paths_on_average(self):
        """Path length grows (slowly) with the query size (Theorem 2 trend)."""
        result = run_figure3_statistics(
            shapes=(GraphShape.CHAIN,),
            table_counts=(4, 12),
            num_test_cases=3,
            iterations_per_case=3,
            seed=13,
        )
        small = result.median_path_length[(GraphShape.CHAIN, 4)]
        large = result.median_path_length[(GraphShape.CHAIN, 12)]
        assert large >= small - 1.0  # allow small-sample noise of one step
