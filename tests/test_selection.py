"""Tests for repro.pareto.selection (preference-based plan selection)."""

import random

import pytest

from repro.core.rmq import RMQOptimizer
from repro.pareto.selection import NoFeasiblePlanError, filter_by_bounds, select_plan


@pytest.fixture
def frontier(chain_model):
    optimizer = RMQOptimizer(chain_model, rng=random.Random(2))
    return optimizer.run(max_steps=8)


class TestFilterByBounds:
    def test_unbounded_keeps_everything(self, frontier):
        kept = filter_by_bounds(frontier, [None, None, None])
        assert len(kept) == len(frontier)

    def test_tight_bound_filters(self, frontier):
        best_time = min(plan.cost[0] for plan in frontier)
        kept = filter_by_bounds(frontier, [best_time, None, None])
        assert kept
        assert all(plan.cost[0] <= best_time for plan in kept)

    def test_impossible_bound_filters_everything(self, frontier):
        assert filter_by_bounds(frontier, [0.0, None, None]) == []

    def test_wrong_arity_rejected(self, frontier):
        with pytest.raises(ValueError):
            filter_by_bounds(frontier, [None])


class TestSelectPlan:
    def test_uniform_weights_pick_some_plan(self, frontier):
        plan = select_plan(frontier)
        assert plan in frontier

    def test_extreme_weight_picks_metric_minimizer(self, frontier):
        fastest = min(frontier, key=lambda p: p.cost[0])
        selected = select_plan(frontier, weights=[1.0, 0.0, 0.0])
        assert selected.cost[0] == pytest.approx(fastest.cost[0])

    def test_bounds_respected(self, frontier):
        time_bound = sorted(plan.cost[0] for plan in frontier)[len(frontier) // 2]
        plan = select_plan(frontier, bounds=[time_bound, None, None])
        assert plan.cost[0] <= time_bound

    def test_infeasible_bounds_raise(self, frontier):
        with pytest.raises(NoFeasiblePlanError):
            select_plan(frontier, bounds=[0.0, 0.0, 0.0])

    def test_empty_candidate_set_raises(self):
        with pytest.raises(NoFeasiblePlanError):
            select_plan([])

    def test_invalid_weights_rejected(self, frontier):
        with pytest.raises(ValueError):
            select_plan(frontier, weights=[1.0])
        with pytest.raises(ValueError):
            select_plan(frontier, weights=[-1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            select_plan(frontier, weights=[0.0, 0.0, 0.0])

    def test_normalization_changes_scale_sensitivity(self, frontier):
        # Without normalization, the metric with the largest absolute values
        # (time in this model) dominates a uniform-weight selection.
        raw = select_plan(frontier, normalize=False)
        fastest = min(frontier, key=lambda p: p.cost[0])
        assert raw.cost[0] <= fastest.cost[0] * (1 + 1e-9) or len(frontier) == 1

    def test_selected_plan_is_pareto_member(self, frontier):
        plan = select_plan(frontier, weights=[0.2, 0.5, 0.3])
        assert any(plan is candidate for candidate in frontier)
