"""Tests of the zero-copy shared-memory task fabric and its kernels.

Three layers, mirroring :mod:`repro.dist.shm`'s contract:

* **Codec fidelity** — the legacy JSON effects codec and the packed-binary
  :class:`SubsetEffects` codec round-trip float64 values *exactly* — NaN
  and ±inf included — through one shared property test, and the binary
  decoder rejects foreign/truncated payloads as cache misses.
* **Kernel equivalence** — the fabric's vectorized insertion
  (:func:`_insert_batch_approx`) and the driver's batched replay
  (:meth:`ArenaPlanCache.replay_accept_batch`) are decision-identical to
  the sequential reference kernels, property-tested over random batches,
  α values, and non-finite costs.
* **Fabric lifecycle** — publish → attach → refresh → unlink: segments
  grow under generation-bumped names, close() is idempotent, runs leak no
  ``/dev/shm`` segments (worker death included), and the thread fallback
  (``REPRO_DP_FABRIC=threads``) is bit-identical to the fabric path.
"""

import json
import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dp import ArenaDPOptimizer
from repro.core.plan_cache import (
    ArenaPlanCache,
    FrontierSimulator,
    _ArenaEntry,
    _entry_append,
    _entry_covered,
    _insert_batch_approx,
    _insert_batch_sequential,
)
from repro.cost.batch import BatchCostModel, CandidateBatch
from repro.dist.cache import TaskCache
from repro.dist.dp import _effects_from_payload, _payload_from_effects
from repro.dist.shm import (
    EFFECTS_BYTES_FORMAT,
    ShmTaskFabric,
    SubsetEffects,
    accepted_dtype,
    pack_batches,
)

#: Per-level pruning factors exercised by the equivalence properties —
#: the α > 1 domain of the vectorized kernel plus the engine's inf cap.
APPROX_ALPHAS = (1.01, 1.5, 2.0, 1e12)

#: Cost components, biased toward collisions (which drive evictions) and
#: including every non-finite value the engines must agree on.
_COST_VALUES = st.one_of(
    st.sampled_from([0.0, 1.0, 2.0, 3.0, 10.0]),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.sampled_from([float("nan"), float("inf"), float("-inf")]),
)


def _key(values):
    """NaN-safe exact snapshot of a float vector (NaN == NaN)."""
    return tuple("nan" if math.isnan(v) else v for v in values)


def _rows_strategy(count, num_metrics):
    return st.lists(
        st.lists(_COST_VALUES, min_size=num_metrics, max_size=num_metrics),
        min_size=count,
        max_size=count,
    )


def _batch_from(costs, tags):
    size = costs.shape[0]
    return CandidateBatch(
        costs=costs,
        cardinalities=np.ones(size, dtype=np.float64),
        op_codes=np.zeros(size, dtype=np.int64),
        tags=tags,
        outer_pos=np.zeros(size, dtype=np.int64),
        inner_pos=np.zeros(size, dtype=np.int64),
    )


@st.composite
def _insert_case(draw):
    """A seed batch (builds frontier state) plus a batch under test."""
    num_metrics = draw(st.integers(min_value=1, max_value=3))
    seed_size = draw(st.integers(min_value=0, max_value=10))
    batch_size = draw(st.integers(min_value=0, max_value=25))
    tag_pool = draw(st.integers(min_value=1, max_value=3))

    def build(count):
        costs = np.asarray(
            draw(_rows_strategy(count, num_metrics)), dtype=np.float64
        ).reshape(count, num_metrics)
        tags = np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=tag_pool - 1),
                    min_size=count,
                    max_size=count,
                )
            ),
            dtype=np.int64,
        )
        return _batch_from(costs, tags)

    alpha = draw(st.sampled_from(APPROX_ALPHAS))
    return num_metrics, build(seed_size), build(batch_size), alpha


def _entry_state(entry):
    return (
        list(entry.handles),
        list(entry.tags),
        [_key(row) for row in entry.rows],
    )


# ---------------------------------------------------------------------------
# Kernel equivalence: _insert_batch_approx == _insert_batch_sequential
# ---------------------------------------------------------------------------
class TestInsertBatchApprox:
    """The fabric's vectorized α > 1 insertion vs the sequential reference."""

    @given(case=_insert_case())
    @settings(max_examples=200, deadline=None)
    def test_decisions_and_frontier_bit_identical(self, case):
        num_metrics, seed_batch, batch, alpha = case
        reference = _ArenaEntry(num_metrics)
        candidate = _ArenaEntry(num_metrics)
        for entry in (reference, candidate):
            if seed_batch.size:
                _insert_batch_sequential(
                    entry, seed_batch, alpha, lambda position: -100 - position
                )
        if batch.size == 0:
            return
        expected = _insert_batch_sequential(
            reference, batch, alpha, lambda position: 1000 + position
        )
        actual = _insert_batch_approx(
            candidate, batch, alpha, lambda position: 1000 + position
        )
        assert actual == expected
        assert _entry_state(candidate) == _entry_state(reference)

    def test_empty_frontier_all_dominated_batch(self):
        # Lone-survivor and zero-survivor fast paths.
        entry = _ArenaEntry(2)
        batch = _batch_from(
            np.asarray([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]),
            np.zeros(3, dtype=np.int64),
        )
        count, positions = _insert_batch_approx(
            entry, batch, 2.0, lambda position: position
        )
        reference = _ArenaEntry(2)
        expected_count, expected_positions = _insert_batch_sequential(
            reference, batch, 2.0, lambda position: position
        )
        assert (count, positions) == (expected_count, expected_positions)
        assert _entry_state(entry) == _entry_state(reference)


# ---------------------------------------------------------------------------
# Batched replay: replay_accept_batch == repeated replay_accept
# ---------------------------------------------------------------------------
class _FakeArena:
    """Just enough arena for ArenaPlanCache's replay path (rel lookup)."""

    def __init__(self, rel):
        self._rel = rel

    def rel(self, handle):
        return self._rel


class _FakeModel:
    def __init__(self, num_metrics, rel):
        self.arena = _FakeArena(rel)
        self.num_metrics = num_metrics


class TestReplayAcceptBatch:
    @given(
        num_metrics=st.integers(min_value=1, max_value=3),
        pre_count=st.integers(min_value=0, max_value=6),
        count=st.integers(min_value=0, max_value=12),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_sequential_replay(self, num_metrics, pre_count, count, data):
        rel = frozenset({0, 1})
        rows = np.asarray(
            data.draw(_rows_strategy(pre_count + count, num_metrics)),
            dtype=np.float64,
        ).reshape(pre_count + count, num_metrics)
        tags = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=2),
                    min_size=pre_count + count,
                    max_size=pre_count + count,
                )
            ),
            dtype=np.int64,
        )
        reference = ArenaPlanCache(_FakeModel(num_metrics, rel))
        candidate = ArenaPlanCache(_FakeModel(num_metrics, rel))
        for index in range(pre_count):
            for cache in (reference, candidate):
                cache.replay_accept(
                    index, tag=int(tags[index]), row=rows[index]
                )
        handles = list(range(100, 100 + count))
        for offset in range(count):
            index = pre_count + offset
            reference.replay_accept(
                handles[offset], tag=int(tags[index]), row=rows[index]
            )
        candidate.replay_accept_batch(
            rel, handles, tags[pre_count:], rows[pre_count:]
        )
        if pre_count + count == 0:
            assert rel not in candidate and rel not in reference
            return
        assert _entry_state(candidate._entries[rel]) == _entry_state(
            reference._entries[rel]
        )

    def test_empty_batch_is_a_no_op(self):
        rel = frozenset({0})
        cache = ArenaPlanCache(_FakeModel(2, rel))
        cache.replay_accept_batch(
            rel, [], np.empty(0, dtype=np.int64), np.empty((0, 2))
        )
        assert rel not in cache


# ---------------------------------------------------------------------------
# Codec fidelity: JSON tier and packed-binary tier, one shared property
# ---------------------------------------------------------------------------
def _roundtrip_json(per_split, num_metrics):
    # json.dumps -> json.loads models the real wire/disk hop (it is what
    # the legacy JSON task-cache tier and result transport do).
    payload = json.loads(json.dumps(_payload_from_effects(per_split)))
    return _effects_from_payload(payload)


def _roundtrip_binary(per_split, num_metrics):
    packed = SubsetEffects.from_split_effects(per_split, num_metrics)
    decoded = SubsetEffects.from_bytes(packed.to_bytes(), num_metrics)
    return decoded.to_split_effects()


def _normalize(per_split):
    return [
        (
            count,
            [
                (outer, inner, op, _key((card,)), _key(cost))
                for outer, inner, op, card, cost in accepted
            ],
        )
        for count, accepted in per_split
    ]


@st.composite
def _split_effects(draw):
    num_metrics = draw(st.integers(min_value=1, max_value=3))
    splits = draw(st.integers(min_value=0, max_value=5))
    per_split = []
    for _ in range(splits):
        accepted_count = draw(st.integers(min_value=0, max_value=4))
        accepted = [
            (
                draw(st.integers(min_value=0, max_value=50)),
                draw(st.integers(min_value=0, max_value=50)),
                draw(st.integers(min_value=0, max_value=10)),
                draw(_COST_VALUES),
                tuple(draw(_rows_strategy(1, num_metrics))[0]),
            )
            for _ in range(accepted_count)
        ]
        per_split.append((draw(st.integers(min_value=0, max_value=200)), accepted))
    return num_metrics, per_split


class TestEffectsCodecs:
    """Both cache tiers must round-trip float64 exactly, specials included."""

    @pytest.mark.parametrize(
        "roundtrip", [_roundtrip_json, _roundtrip_binary], ids=["json", "binary"]
    )
    @given(case=_split_effects())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_exact(self, roundtrip, case):
        num_metrics, per_split = case
        assert _normalize(roundtrip(per_split, num_metrics)) == _normalize(
            per_split
        )

    def test_specials_survive_both_codecs(self):
        per_split = [
            (
                7,
                [
                    (0, 1, 2, float("nan"), (float("inf"), float("-inf"))),
                    (3, 4, 5, 0.1 + 0.2, (1e-323, 1.7976931348623157e308)),
                ],
            ),
            (0, []),
        ]
        for roundtrip in (_roundtrip_json, _roundtrip_binary):
            assert _normalize(roundtrip(per_split, 2)) == _normalize(per_split)

    def test_from_bytes_rejects_foreign_payloads(self):
        packed = SubsetEffects.from_split_effects(
            [(3, [(0, 0, 0, 1.0, (1.0, 2.0))])], 2
        )
        data = packed.to_bytes()
        with pytest.raises(ValueError):
            SubsetEffects.from_bytes(b"no header newline", 2)
        with pytest.raises(ValueError):
            SubsetEffects.from_bytes(b"not json\n" + data, 2)
        with pytest.raises(ValueError):  # num_metrics mismatch
            SubsetEffects.from_bytes(data, 3)
        with pytest.raises(ValueError):  # truncated body
            SubsetEffects.from_bytes(data[:-1], 2)
        header = json.loads(data[: data.find(b"\n")])
        header["format"] = "someone-elses-format"
        forged = json.dumps(header, sort_keys=True).encode("ascii")
        with pytest.raises(ValueError):
            SubsetEffects.from_bytes(
                forged + data[data.find(b"\n") :], 2
            )
        assert header.pop("format") == "someone-elses-format"
        assert EFFECTS_BYTES_FORMAT == "repro-dp-effects-v1"

    def test_binary_cache_tier_roundtrip(self, tmp_path):
        cache = TaskCache(str(tmp_path / "cache"))
        packed = SubsetEffects.from_split_effects(
            [(2, [(0, 1, 2, float("nan"), (float("inf"), 0.5))])], 2
        )
        key = "ab" + "0" * 62
        cache.put_raw_bytes(key, packed.to_bytes())
        payload = cache.get_raw_bytes(key)
        assert payload is not None
        decoded = SubsetEffects.from_bytes(payload, 2)
        assert _normalize(decoded.to_split_effects()) == _normalize(
            packed.to_split_effects()
        )
        assert cache.get_raw_bytes("cd" + "1" * 62) is None
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 1


# ---------------------------------------------------------------------------
# SubsetEffects packing and the frontier simulator
# ---------------------------------------------------------------------------
def _scalar_accepts(batches, num_metrics, alpha):
    """Independent scalar reference of pack_batches' accept decisions."""
    entry = _ArenaEntry(num_metrics)
    per_batch = []
    for batch in batches:
        accepted = []
        for position in range(batch.size):
            row = batch.costs[position]
            tag = int(batch.tags[position])
            if _entry_covered(entry, tag, row, alpha):
                continue
            _entry_append(entry, object(), tag, row)
            accepted.append(position)
        per_batch.append(accepted)
    return per_batch


class TestPackBatches:
    @given(
        num_metrics=st.integers(min_value=1, max_value=3),
        alpha=st.sampled_from((1.0,) + APPROX_ALPHAS),
        data=st.data(),
    )
    @settings(max_examples=75, deadline=None)
    def test_matches_scalar_reference(self, num_metrics, alpha, data):
        batches = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
            count = data.draw(st.integers(min_value=0, max_value=12))
            costs = np.asarray(
                data.draw(_rows_strategy(count, num_metrics)), dtype=np.float64
            ).reshape(count, num_metrics)
            tags = np.asarray(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=1),
                        min_size=count,
                        max_size=count,
                    )
                ),
                dtype=np.int64,
            )
            batches.append(_batch_from(costs, tags))
        packed = pack_batches(batches, num_metrics, alpha)
        expected = _scalar_accepts(batches, num_metrics, alpha)
        assert packed.num_splits == len(batches)
        for index, batch in enumerate(batches):
            count, records = packed.split(index)
            assert count == batch.size
            assert records["split"].tolist() == [index] * len(records)
            positions = expected[index]
            assert len(records) == len(positions)
            for record, position in zip(records, positions):
                assert int(record["outer"]) == int(batch.outer_pos[position])
                assert int(record["inner"]) == int(batch.inner_pos[position])
                assert int(record["op"]) == int(batch.op_codes[position])
                assert _key((float(record["card"]),)) == _key(
                    (float(batch.cardinalities[position]),)
                )
                assert _key(record["cost"]) == _key(batch.costs[position])

    def test_accepted_dtype_is_stable_and_unpadded(self):
        dtype = accepted_dtype(3)
        assert dtype.itemsize == 4 * 4 + 8 + 8 * 3
        assert accepted_dtype(3) is dtype  # memoized
        names = dtype.names
        assert names == ("split", "outer", "inner", "op", "card", "cost")


class TestFrontierSimulator:
    def test_from_columns_validates_shapes(self):
        with pytest.raises(ValueError):
            FrontierSimulator.from_columns(2, [1], [0], np.zeros((1, 3)))
        with pytest.raises(ValueError):
            FrontierSimulator.from_columns(2, [1, 2], [0], np.zeros((1, 2)))
        with pytest.raises(ValueError):
            FrontierSimulator.from_columns(2, [1], [0], np.zeros(2))

    def test_columns_roundtrip(self):
        rows = np.asarray([[1.0, 2.0], [3.0, 0.5]])
        simulator = FrontierSimulator.from_columns(2, [7, 9], [0, 1], rows)
        handles, tags, live_rows = simulator.columns()
        assert handles == [7, 9]
        assert tags == [0, 1]
        assert live_rows is rows  # adopted, not copied
        np.testing.assert_array_equal(live_rows, rows)
        assert simulator.size == 2
        assert simulator.num_metrics == 2

    def test_borrowed_readonly_rows_never_mutated(self):
        # The fabric hands workers read-only shared-memory views; insertion
        # must replace the matrix, never write into the borrow.
        rows = np.asarray([[5.0, 5.0]])
        rows.flags.writeable = False
        simulator = FrontierSimulator.from_columns(2, [1], [0], rows)
        batch = _batch_from(
            np.asarray([[1.0, 1.0]]), np.zeros(1, dtype=np.int64)
        )
        accepted = simulator.insert_batch(batch, 1.01)
        assert accepted == [0]
        np.testing.assert_array_equal(rows, [[5.0, 5.0]])  # borrow untouched
        _, _, live_rows = simulator.columns()
        np.testing.assert_array_equal(live_rows, [[1.0, 1.0]])  # evicted


# ---------------------------------------------------------------------------
# Fabric lifecycle: publish -> attach -> refresh -> unlink
# ---------------------------------------------------------------------------
def _shm_segments():
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-tmpfs platforms
        return set()
    return {name for name in os.listdir(root) if name.startswith("rdp")}


def _run_to_completion(optimizer, watch=None):
    names = set()
    while not optimizer.finished:
        optimizer.step()
        if watch is not None and watch._fabric is not None:
            names.update(watch._fabric.segment_names)
    return names


def _table_state(optimizer):
    return {
        tuple(sorted(rel)): [
            (_key(p.cost), p.output_format, _key((p.cardinality,)))
            for p in optimizer.plan_cache.plans(rel)
        ]
        for rel in optimizer.plan_cache.table_sets()
    }


class TestFabricLifecycle:
    def test_env_gates_fabric_creation(self, chain_model, monkeypatch):
        batch_model = BatchCostModel(chain_model)
        for mode in ("threads", "off", "THREADS "):
            monkeypatch.setenv("REPRO_DP_FABRIC", mode)
            assert ShmTaskFabric.create(batch_model, 2) is None
        monkeypatch.setenv("REPRO_DP_FABRIC", "ray")
        with pytest.raises(ValueError, match="REPRO_DP_FABRIC"):
            ShmTaskFabric.create(batch_model, 2)

    def test_segment_growth_bumps_generation(self, chain_model):
        fabric = ShmTaskFabric.create(BatchCostModel(chain_model), 1)
        if fabric is None:
            pytest.skip("platform cannot run the shm fabric")
        try:
            before = _shm_segments()
            fabric._write("op", 0, np.arange(10, dtype=np.int32), 10)
            first = fabric._segments["op"]
            first_name = first.name
            assert first.gen == 1
            assert first_name in _shm_segments()
            # Growing past capacity renames the segment (generation bump)
            # and unlinks the old one; the preserved prefix is copied.
            fabric._published_nodes = 10
            fabric._write(
                "op", 10, np.arange(5000, dtype=np.int32), 5010
            )
            second = fabric._segments["op"]
            assert second.gen == 2
            assert second.name != first_name
            live = _shm_segments()
            assert first_name not in live
            assert second.name in live
        finally:
            fabric.close()
        after = _shm_segments()
        assert not (after - before), "fabric leaked shared-memory segments"
        assert fabric.closed
        fabric.close()  # idempotent
        with pytest.raises(RuntimeError):
            fabric.flush()

    def test_reduce_requires_flush(self, chain_model):
        fabric = ShmTaskFabric.create(BatchCostModel(chain_model), 1)
        if fabric is None:
            pytest.skip("platform cannot run the shm fabric")
        try:
            with pytest.raises(RuntimeError, match="flush"):
                fabric.reduce_shard((3,), 1.01)
        finally:
            fabric.close()

    def test_full_run_unlinks_every_segment(self, chain_model):
        before = _shm_segments()
        optimizer = ArenaDPOptimizer(
            chain_model, alpha=2.0, backend="coordinator", workers=2
        )
        if optimizer._fabric is None:
            pytest.skip("platform cannot run the shm fabric")
        used = _run_to_completion(optimizer, watch=optimizer)
        assert used, "the run never published a segment"
        # Finishing the DP closes the fabric (pool down, segments unlinked).
        assert optimizer._fabric is None
        after = _shm_segments()
        assert not (used & after), f"leaked segments: {sorted(used & after)}"
        assert not (after - before)

    def test_worker_death_mid_level_leaks_nothing(self, chain_model):
        sequential = ArenaDPOptimizer(chain_model, alpha=1.01, tasks_per_step=50)
        _run_to_completion(sequential)

        deaths = []

        def killer(lease):
            if lease.worker_id == "dp-worker-0" and not deaths:
                deaths.append(lease.lease_id)
                raise RuntimeError("injected worker death")

        before = _shm_segments()
        coordinated = ArenaDPOptimizer(
            chain_model,
            alpha=1.01,
            tasks_per_step=50,
            backend="coordinator",
            workers=3,
            lease_timeout=0.2,
            on_lease=killer,
        )
        if coordinated._fabric is None:
            pytest.skip("platform cannot run the shm fabric")
        used = _run_to_completion(coordinated, watch=coordinated)
        assert deaths, "the fault-injection hook never fired"
        # The reassigned lease's replacement worker attached to the
        # already-published level and produced bit-identical state.
        assert _table_state(coordinated) == _table_state(sequential)
        after = _shm_segments()
        assert not (used & after), f"leaked segments: {sorted(used & after)}"
        assert not (after - before)

    def test_explicit_close_is_idempotent(self, chain_model):
        optimizer = ArenaDPOptimizer(
            chain_model, alpha=2.0, backend="coordinator", workers=1
        )
        fabric = optimizer._fabric
        if fabric is None:
            pytest.skip("platform cannot run the shm fabric")
        optimizer.step()
        optimizer.close()
        assert fabric.closed
        assert optimizer._fabric is None
        optimizer.close()  # idempotent
        assert not set(fabric.segment_names) & _shm_segments()

    def test_threads_fallback_bit_identical(self, chain_model, monkeypatch):
        monkeypatch.setenv("REPRO_DP_FABRIC", "threads")
        fallback = ArenaDPOptimizer(
            chain_model, alpha=1.01, backend="coordinator", workers=2
        )
        assert fallback._fabric is None
        monkeypatch.delenv("REPRO_DP_FABRIC")
        sequential = ArenaDPOptimizer(chain_model, alpha=1.01)
        _run_to_completion(fallback)
        _run_to_completion(sequential)
        assert _table_state(fallback) == _table_state(sequential)
        assert (
            fallback.statistics.plans_built == sequential.statistics.plans_built
        )
