"""Tests for the benchmark CLI (repro.bench.cli)."""

import pytest

from repro.bench.cli import build_parser, main, run


class TestParser:
    def test_known_figures_accepted(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--scale", "smoke"])
        assert args.figure == "figure1"
        assert args.scale == "smoke"

    def test_unknown_figure_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure42"])

    def test_unknown_scale_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure1", "--scale", "enormous"])

    def test_default_scale(self):
        args = build_parser().parse_args(["figure2"])
        assert args.scale == "default"

    def test_workers_flag(self):
        args = build_parser().parse_args(["figure1", "--workers", "4"])
        assert args.workers == 4
        assert build_parser().parse_args(["figure1"]).workers is None

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            run(["figure1", "--scale", "smoke", "--workers", "0"])

    def test_invalid_workers_rejected_for_figure3_too(self):
        with pytest.raises(SystemExit):
            run(["figure3", "--scale", "smoke", "--workers", "0"])

    def test_granularity_flag(self):
        args = build_parser().parse_args(["figure1", "--granularity", "case"])
        assert args.granularity == "case"
        assert (
            build_parser().parse_args(["figure1", "--granularity", "auto"]).granularity
            == "auto"
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--granularity", "query"])

    def test_backend_and_cache_flags(self):
        args = build_parser().parse_args(
            ["figure1", "--backend", "coordinator", "--cache-dir", "/tmp/c"]
        )
        assert args.backend == "coordinator"
        assert args.cache_dir == "/tmp/c"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--backend", "cluster"])

    def test_cache_max_mb_flag(self):
        from repro.bench.cli import _cache_cap_bytes

        args = build_parser().parse_args(
            ["figure1", "--cache-dir", "/tmp/c", "--cache-max-mb", "64"]
        )
        assert _cache_cap_bytes(args) == 64 * 1024 * 1024
        unbounded = build_parser().parse_args(["figure1", "--cache-dir", "/tmp/c"])
        assert _cache_cap_bytes(unbounded) is None
        negative = build_parser().parse_args(
            ["figure1", "--cache-dir", "/tmp/c", "--cache-max-mb", "-1"]
        )
        with pytest.raises(SystemExit, match="cache-max-mb"):
            _cache_cap_bytes(negative)
        capless = build_parser().parse_args(["figure1", "--cache-max-mb", "64"])
        with pytest.raises(SystemExit, match="requires --cache-dir"):
            _cache_cap_bytes(capless)

    def test_coordinate_parser(self):
        from repro.bench.cli import build_coordinate_parser

        args = build_coordinate_parser().parse_args(
            ["figure1", "--dir", "wd", "--workers", "2", "--steps"]
        )
        assert args.figure == "figure1"
        assert args.dir == "wd"
        assert args.workers == 2
        assert args.steps is True
        with pytest.raises(SystemExit):  # --dir is required
            build_coordinate_parser().parse_args(["figure1"])

    def test_work_parser(self):
        from repro.bench.cli import build_work_parser

        args = build_work_parser().parse_args(
            ["--dir", "wd", "--worker-id", "w7", "--max-batches", "3"]
        )
        assert args.dir == "wd"
        assert args.worker_id == "w7"
        assert args.max_batches == 3

    def test_steps_and_shard_flags(self):
        args = build_parser().parse_args(
            ["figure1", "--steps", "--shard", "0/2", "--out", "x.json"]
        )
        assert args.steps is True
        assert args.shard == "0/2"
        assert args.out == "x.json"

    def test_invalid_shard_designators_rejected(self):
        for designator in ("2", "a/b", "2/2", "-1/2", "0/0"):
            with pytest.raises(SystemExit):
                run(["figure1", "--scale", "smoke", "--shard", designator])

    def test_figure3_rejects_shard_and_steps(self):
        with pytest.raises(SystemExit):
            run(["figure3", "--shard", "0/2"])
        with pytest.raises(SystemExit):
            run(["figure3", "--steps"])


class TestRun:
    def test_figure3_smoke_report(self):
        report = run(["figure3", "--scale", "smoke"])
        assert "path length" in report
        assert "chain" in report

    def test_figure3_seed_override(self):
        report = run(["figure3", "--scale", "smoke", "--seed", "123"])
        assert "Figure 3 statistics" in report

    def test_main_prints_report(self, capsys, monkeypatch):
        # Shrink the smoke grid further by patching the spec constructor so the
        # CLI test stays fast.
        from repro.bench import figures
        from repro.bench.scenario import ScenarioScale

        original = figures.figure8_spec

        def tiny_spec(scale=ScenarioScale.DEFAULT):
            return original(ScenarioScale.SMOKE).with_scale_overrides(
                table_counts=(4,), num_test_cases=1, time_budget=0.1,
                checkpoints=(0.05, 0.1),
            )

        monkeypatch.setitem(figures.FIGURE_SPECS, "figure8", tiny_spec)
        exit_code = main(["figure8", "--scale", "smoke"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Scenario: figure8" in output
        assert "Winners per cell" in output


class TestShardAndMerge:
    """End-to-end: two --shard runs plus merge equal the sequential run."""

    @pytest.fixture(autouse=True)
    def tiny_step_figure(self, monkeypatch):
        from repro.bench import figures
        from repro.bench.scenario import ScenarioScale

        original = figures.FIGURE_SPECS["figure1"]

        def tiny_spec(scale=ScenarioScale.DEFAULT):
            return figures.step_variant(
                original(ScenarioScale.SMOKE).with_scale_overrides(
                    table_counts=(4,), num_test_cases=1
                ),
                step_checkpoints=(1, 2),
            )

        monkeypatch.setitem(figures.STEP_FIGURE_SPECS, "figure1", tiny_spec)

    def test_shard_merge_matches_sequential_report(self, tmp_path):
        paths = []
        for index in range(2):
            out = str(tmp_path / f"shard{index}.json")
            report = run(
                [
                    "figure1",
                    "--scale",
                    "smoke",
                    "--steps",
                    "--shard",
                    f"{index}/2",
                    "--out",
                    out,
                ]
            )
            assert "Task provenance" in report
            assert f"shard {index}/2" in report
            paths.append(out)
        merged = run(["merge", *paths])
        sequential = run(["figure1", "--scale", "smoke", "--steps"])
        assert merged == sequential
        assert "step=1  step=2" in merged

    def test_merge_rejects_incomplete_shards(self, tmp_path):
        out = str(tmp_path / "only.json")
        run(["figure1", "--scale", "smoke", "--steps", "--shard", "0/2", "--out", out])
        with pytest.raises(ValueError, match="missing shard indices"):
            run(["merge", out])


class TestCoordinateAndWork:
    """End-to-end: coordinate + work subcommands match the sequential report."""

    @pytest.fixture(autouse=True)
    def tiny_step_figure(self, monkeypatch):
        from repro.bench import figures
        from repro.bench.scenario import ScenarioScale

        original = figures.FIGURE_SPECS["figure1"]

        def tiny_spec(scale=ScenarioScale.DEFAULT):
            return figures.step_variant(
                original(ScenarioScale.SMOKE).with_scale_overrides(
                    table_counts=(4,), num_test_cases=1
                ),
                step_checkpoints=(1, 2),
            )

        monkeypatch.setitem(figures.STEP_FIGURE_SPECS, "figure1", tiny_spec)

    def test_coordinate_report_matches_sequential(self, tmp_path):
        workdir = str(tmp_path / "workdir")
        cache_dir = str(tmp_path / "cache")
        report = run(
            [
                "coordinate", "figure1", "--scale", "smoke", "--steps",
                "--dir", workdir, "--workers", "2",
                "--cache-dir", cache_dir, "--timeout", "120",
            ]
        )
        sequential = run(["figure1", "--scale", "smoke", "--steps"])
        header, body = report.split("\n", 1)
        assert header.startswith("[coordinator:")
        assert body == sequential

    def test_warm_cache_coordinate_queues_zero_batches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        common = [
            "coordinate", "figure1", "--scale", "smoke", "--steps",
            "--cache-dir", cache_dir, "--timeout", "120",
        ]
        run([*common, "--dir", str(tmp_path / "cold"), "--workers", "1"])
        # Fresh work directory, warm cache: every leaf is prefilled and no
        # batch is ever queued (--workers 0: nobody could execute one).
        warm = run([*common, "--dir", str(tmp_path / "warm"), "--workers", "0"])
        assert "0 batch(es)" in warm.split("\n", 1)[0]
        sequential = run(["figure1", "--scale", "smoke", "--steps"])
        assert warm.split("\n", 1)[1] == sequential

    def test_work_subcommand_drains_directory(self, tmp_path):
        from repro.bench import figures
        from repro.bench.scenario import ScenarioScale
        from repro.dist.protocol import init_workdir

        spec = figures.STEP_FIGURE_SPECS["figure1"](ScenarioScale.SMOKE)
        workdir = str(tmp_path / "workdir")
        meta = init_workdir(workdir, spec)
        report = run(["work", "--dir", workdir, "--worker-id", "w0"])
        assert f"executed {meta['batches']} batch(es)" in report
