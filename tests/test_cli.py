"""Tests for the benchmark CLI (repro.bench.cli)."""

import pytest

from repro.bench.cli import build_parser, main, run


class TestParser:
    def test_known_figures_accepted(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--scale", "smoke"])
        assert args.figure == "figure1"
        assert args.scale == "smoke"

    def test_unknown_figure_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure42"])

    def test_unknown_scale_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure1", "--scale", "enormous"])

    def test_default_scale(self):
        args = build_parser().parse_args(["figure2"])
        assert args.scale == "default"

    def test_workers_flag(self):
        args = build_parser().parse_args(["figure1", "--workers", "4"])
        assert args.workers == 4
        assert build_parser().parse_args(["figure1"]).workers is None

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            run(["figure1", "--scale", "smoke", "--workers", "0"])

    def test_invalid_workers_rejected_for_figure3_too(self):
        with pytest.raises(SystemExit):
            run(["figure3", "--scale", "smoke", "--workers", "0"])


class TestRun:
    def test_figure3_smoke_report(self):
        report = run(["figure3", "--scale", "smoke"])
        assert "path length" in report
        assert "chain" in report

    def test_figure3_seed_override(self):
        report = run(["figure3", "--scale", "smoke", "--seed", "123"])
        assert "Figure 3 statistics" in report

    def test_main_prints_report(self, capsys, monkeypatch):
        # Shrink the smoke grid further by patching the spec constructor so the
        # CLI test stays fast.
        from repro.bench import figures
        from repro.bench.scenario import ScenarioScale

        original = figures.figure8_spec

        def tiny_spec(scale=ScenarioScale.DEFAULT):
            return original(ScenarioScale.SMOKE).with_scale_overrides(
                table_counts=(4,), num_test_cases=1, time_budget=0.1,
                checkpoints=(0.05, 0.1),
            )

        monkeypatch.setitem(figures.FIGURE_SPECS, "figure8", tiny_spec)
        exit_code = main(["figure8", "--scale", "smoke"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Scenario: figure8" in output
        assert "Winners per cell" in output
