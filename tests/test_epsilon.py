"""Unit tests for repro.pareto.epsilon (approximation-error indicator)."""

import pytest

from repro.pareto.epsilon import (
    approximation_error,
    approximation_error_of_plans,
    is_alpha_approximation,
)


class TestApproximationError:
    def test_perfect_coverage_is_one(self):
        reference = [(1.0, 4.0), (4.0, 1.0)]
        assert approximation_error(reference, reference) == 1.0

    def test_superset_coverage_is_one(self):
        produced = [(1.0, 4.0), (4.0, 1.0), (2.0, 2.0)]
        reference = [(1.0, 4.0), (4.0, 1.0)]
        assert approximation_error(produced, reference) == 1.0

    def test_factor_two_error(self):
        produced = [(2.0, 2.0)]
        reference = [(1.0, 1.0)]
        assert approximation_error(produced, reference) == pytest.approx(2.0)

    def test_worst_reference_point_determines_error(self):
        produced = [(1.0, 1.0)]
        reference = [(1.0, 1.0), (0.25, 4.0)]
        # The produced point covers (1,1) with factor 1 but (0.25,4) only with
        # factor 4 in the first metric.
        assert approximation_error(produced, reference) == pytest.approx(4.0)

    def test_best_produced_point_is_used(self):
        produced = [(8.0, 8.0), (1.5, 1.5)]
        reference = [(1.0, 1.0)]
        assert approximation_error(produced, reference) == pytest.approx(1.5)

    def test_error_never_below_one(self):
        produced = [(0.1, 0.1)]
        reference = [(1.0, 1.0)]
        assert approximation_error(produced, reference) == 1.0

    def test_empty_produced_set_is_infinite(self):
        assert approximation_error([], [(1.0, 1.0)]) == float("inf")

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            approximation_error([(1.0, 1.0)], [])

    def test_plans_wrapper(self, chain_model):
        scans = [chain_model.make_scan(0, op) for op in chain_model.scan_operators(0)]
        reference = [scan.cost for scan in scans]
        assert approximation_error_of_plans(scans, reference) == 1.0


class TestIsAlphaApproximation:
    def test_exact_cover(self):
        reference = [(1.0, 2.0)]
        assert is_alpha_approximation(reference, reference, 1.0)

    def test_cover_within_alpha(self):
        assert is_alpha_approximation([(2.0, 2.0)], [(1.0, 1.0)], 2.0)
        assert not is_alpha_approximation([(2.0, 2.0)], [(1.0, 1.0)], 1.5)

    def test_empty_produced_never_covers(self):
        assert not is_alpha_approximation([], [(1.0, 1.0)], 100.0)

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            is_alpha_approximation([(1.0,)], [], 2.0)

    def test_consistency_with_error(self):
        produced = [(3.0, 1.0), (1.0, 3.0)]
        reference = [(1.0, 1.0), (2.0, 0.5)]
        error = approximation_error(produced, reference)
        assert is_alpha_approximation(produced, reference, error + 1e-9)
        assert not is_alpha_approximation(produced, reference, error - 1e-6)
