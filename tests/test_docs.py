"""Documentation checks: doctests and link integrity.

Two guarantees keep the docs honest:

* every ``>>>`` example — in the module docstrings of the documented
  subsystems and in the markdown files under ``docs/`` — is executed and
  must produce exactly the shown output;
* every relative link in the markdown docs must point to an existing file,
  and every ``#fragment`` to a real heading anchor (GitHub slug rules).
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown documents whose doctests run and whose links are checked.
DOC_FILES = (
    "README.md",
    "ARCHITECTURE.md",
    "docs/API.md",
    "docs/TUTORIAL.md",
)

#: Modules whose docstring examples are part of the documentation.
DOCTEST_MODULES = (
    "repro.pareto.engine",
    "repro.bench.tasks",
    "repro.core.interface",
    "repro.obs.tracer",
    "repro.obs.metrics",
)

#: Markdown files containing executable ``>>>`` examples.
DOCTEST_FILES = ("docs/API.md", "docs/TUTORIAL.md")


# ---------------------------------------------------------------------------
# Doctests
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = __import__(module_name, fromlist=["_"])
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctest examples"
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"


@pytest.mark.parametrize("relative_path", DOCTEST_FILES)
def test_markdown_doctests(relative_path):
    results = doctest.testfile(
        str(REPO_ROOT / relative_path),
        module_relative=False,
        verbose=False,
        optionflags=doctest.ELLIPSIS,
    )
    assert results.attempted > 0, f"{relative_path} has no doctest examples"
    assert results.failed == 0, f"{relative_path}: {results.failed} doctest failures"


# ---------------------------------------------------------------------------
# Link and anchor integrity
# ---------------------------------------------------------------------------
_LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation, dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown: str) -> set:
    anchors = set()
    without_code = _CODE_FENCE.sub("", markdown)
    for match in _HEADING_PATTERN.finditer(without_code):
        anchors.add(_github_slug(match.group(2)))
    return anchors


def _links(markdown: str):
    without_code = _CODE_FENCE.sub("", markdown)
    return _LINK_PATTERN.findall(without_code)


@pytest.mark.parametrize("relative_path", DOC_FILES)
def test_markdown_links_resolve(relative_path):
    source = REPO_ROOT / relative_path
    markdown = source.read_text(encoding="utf-8")
    problems = []
    for target in _links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            destination = (source.parent / path_part).resolve()
            if not destination.exists():
                problems.append(f"{target}: file {path_part!r} does not exist")
                continue
        else:
            destination = source
        if fragment:
            if destination.suffix.lower() != ".md":
                continue
            available = _anchors(destination.read_text(encoding="utf-8"))
            if fragment not in available:
                problems.append(
                    f"{target}: anchor #{fragment} not among headings of "
                    f"{destination.name} ({sorted(available)})"
                )
    assert not problems, f"{relative_path}: " + "; ".join(problems)


def test_doc_files_exist():
    for relative_path in DOC_FILES + ("ROADMAP.md", "PAPER.md", "CHANGES.md"):
        assert (REPO_ROOT / relative_path).exists(), relative_path
