"""Tests for repro.utils (rng derivation, stopwatch)."""

import time

from repro.utils.rng import derive_rng, derive_seed
from repro.utils.timer import Stopwatch


class TestDerivedSeeds:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_streams_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_rng_reproducible(self):
        first = derive_rng(5, "x").random()
        second = derive_rng(5, "x").random()
        assert first == second

    def test_derive_rng_streams_independent(self):
        values_a = [derive_rng(5, "a").random() for _ in range(1)]
        values_b = [derive_rng(5, "b").random() for _ in range(1)]
        assert values_a != values_b

    def test_integer_and_string_parts_mix(self):
        assert derive_seed(1, "case", 3) != derive_seed(1, "case", 4)


class TestStopwatch:
    def test_elapsed_increases(self):
        watch = Stopwatch()
        first = watch.elapsed
        time.sleep(0.01)
        assert watch.elapsed > first

    def test_reset(self):
        watch = Stopwatch()
        time.sleep(0.01)
        watch.reset()
        assert watch.elapsed < 0.01

    def test_exceeded(self):
        watch = Stopwatch()
        assert not watch.exceeded(10.0)
        time.sleep(0.01)
        assert watch.exceeded(0.005)
