"""Unit tests for repro.core.frontier (Algorithm 3 and the alpha schedule)."""

import pytest

from repro.core.frontier import AlphaSchedule, FrontierApproximator
from repro.core.plan_cache import PlanCache
from repro.core.random_plans import RandomPlanGenerator
from repro.plans.plan import JoinPlan
from repro.plans.validation import validate_plan


class TestAlphaSchedule:
    def test_paper_schedule_values(self):
        schedule = AlphaSchedule.paper()
        assert schedule.alpha(1) == pytest.approx(25.0)
        assert schedule.alpha(24) == pytest.approx(25.0)
        assert schedule.alpha(25) == pytest.approx(25.0 * 0.99)
        assert schedule.alpha(50) == pytest.approx(25.0 * 0.99**2)

    def test_schedule_is_non_increasing(self):
        schedule = AlphaSchedule.paper()
        values = [schedule.alpha(i) for i in range(1, 2000)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_schedule_floored_at_one(self):
        schedule = AlphaSchedule(initial=2.0, decay=0.5, period=1)
        assert schedule.alpha(100) == 1.0

    def test_constant_schedule(self):
        schedule = AlphaSchedule.constant(5.0)
        assert schedule.alpha(1) == 5.0
        assert schedule.alpha(10_000) == 5.0

    def test_compressed_schedule_decays_faster(self):
        paper = AlphaSchedule.paper()
        compressed = AlphaSchedule.compressed(100)
        assert compressed.alpha(50) < paper.alpha(50)
        assert compressed.alpha(1) == pytest.approx(paper.alpha(1), rel=0.05)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AlphaSchedule(initial=0.5)
        with pytest.raises(ValueError):
            AlphaSchedule(decay=0.0)
        with pytest.raises(ValueError):
            AlphaSchedule(decay=1.5)
        with pytest.raises(ValueError):
            AlphaSchedule(period=0)
        with pytest.raises(ValueError):
            AlphaSchedule(floor=0.5)
        with pytest.raises(ValueError):
            AlphaSchedule.compressed(0)

    def test_invalid_iteration_rejected(self):
        with pytest.raises(ValueError):
            AlphaSchedule.paper().alpha(0)


class TestFrontierApproximator:
    @pytest.fixture
    def approximator(self, chain_model):
        return FrontierApproximator(chain_model)

    @pytest.fixture
    def base_plan(self, chain_model, rng):
        return RandomPlanGenerator(chain_model, rng).random_bushy_plan()

    def test_cache_populated_for_all_intermediate_results(
        self, approximator, base_plan, chain_model
    ):
        cache = PlanCache()
        approximator.approximate(base_plan, cache, iteration=1)
        for node in base_plan.iter_nodes():
            assert cache.plans(node.rel), f"no cached plans for {sorted(node.rel)}"

    def test_full_query_frontier_present(self, approximator, base_plan, chain_model):
        cache = PlanCache()
        approximator.approximate(base_plan, cache, iteration=1)
        assert cache.plans(chain_model.query.relations)

    def test_cached_plans_are_valid_partial_plans(
        self, approximator, base_plan, chain_model, chain_query_4
    ):
        cache = PlanCache()
        approximator.approximate(base_plan, cache, iteration=1)
        for rel in cache.table_sets():
            for plan in cache.plans(rel):
                assert plan.rel == rel
                validate_plan(
                    plan,
                    chain_query_4,
                    chain_model.library,
                    chain_model.num_metrics,
                    require_complete=False,
                )

    def test_operator_variations_tried(self, approximator, chain_model, rng):
        """For a fixed join order, the approximation explores operator choices."""
        cache = PlanCache()
        plan = RandomPlanGenerator(chain_model, rng).random_bushy_plan()
        approximator.approximate(plan, cache, iteration=10_000)  # fine precision
        top_plans = cache.plans(chain_model.query.relations)
        operators_used = set()
        for cached in top_plans:
            if isinstance(cached, JoinPlan):
                operators_used.add(cached.operator.name)
        assert len(top_plans) >= 2
        assert len(operators_used) >= 1

    def test_cache_reuse_across_iterations_grows_coverage(
        self, approximator, chain_model, rng
    ):
        cache = PlanCache()
        generator = RandomPlanGenerator(chain_model, rng)
        approximator.approximate(generator.random_bushy_plan(), cache, iteration=1)
        sets_after_first = len(cache)
        approximator.approximate(generator.random_bushy_plan(), cache, iteration=2)
        assert len(cache) >= sets_after_first

    def test_plans_built_counter_increases(self, approximator, base_plan):
        cache = PlanCache()
        before = approximator.plans_built
        approximator.approximate(base_plan, cache, iteration=1)
        assert approximator.plans_built > before

    def test_finer_alpha_keeps_at_least_as_many_plans(self, chain_model, rng):
        plan = RandomPlanGenerator(chain_model, rng).random_bushy_plan()
        coarse_cache = PlanCache()
        FrontierApproximator(chain_model, AlphaSchedule.constant(25.0)).approximate(
            plan, coarse_cache, iteration=1
        )
        fine_cache = PlanCache()
        FrontierApproximator(chain_model, AlphaSchedule.constant(1.0)).approximate(
            plan, fine_cache, iteration=1
        )
        rel = chain_model.query.relations
        assert fine_cache.size_of(rel) >= coarse_cache.size_of(rel)

    def test_returns_same_cache_object(self, approximator, base_plan):
        cache = PlanCache()
        returned = approximator.approximate(base_plan, cache, iteration=1)
        assert returned is cache
