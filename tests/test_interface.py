"""Unit tests for repro.core.interface (anytime optimizer protocol)."""

import time
from typing import List

import pytest

from repro.core.interface import AnytimeOptimizer, OptimizerStatistics, run_steps
from repro.plans.plan import Plan


class CountingOptimizer(AnytimeOptimizer):
    """Trivial optimizer used to test the shared driver logic."""

    name = "Counting"

    def __init__(self, cost_model, finish_after=None, step_delay=0.0):
        super().__init__(cost_model)
        self._finish_after = finish_after
        self._step_delay = step_delay
        self._plans: List[Plan] = []

    def step(self) -> None:
        if self._step_delay:
            time.sleep(self._step_delay)
        self.statistics.steps += 1
        if not self._plans:
            self._plans = [self.cost_model.default_scan(0)]

    def frontier(self) -> List[Plan]:
        return list(self._plans)

    @property
    def finished(self) -> bool:
        return (
            self._finish_after is not None
            and self.statistics.steps >= self._finish_after
        )


class TestStatistics:
    def test_defaults(self):
        statistics = OptimizerStatistics()
        assert statistics.steps == 0
        assert statistics.plans_built == 0
        assert statistics.extra == {}


class TestRunDriver:
    def test_max_steps_budget(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        optimizer.run(max_steps=7)
        assert optimizer.statistics.steps == 7

    def test_time_budget_stops_run(self, chain_model):
        optimizer = CountingOptimizer(chain_model, step_delay=0.01)
        optimizer.run(time_budget=0.05)
        assert 1 <= optimizer.statistics.steps <= 20

    def test_finished_stops_run(self, chain_model):
        optimizer = CountingOptimizer(chain_model, finish_after=3)
        optimizer.run(max_steps=100)
        assert optimizer.statistics.steps == 3

    def test_run_returns_frontier(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        frontier = optimizer.run(max_steps=1)
        assert len(frontier) == 1

    def test_budget_required(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        with pytest.raises(ValueError):
            optimizer.run()

    def test_accessors(self, chain_model, chain_query_4):
        optimizer = CountingOptimizer(chain_model)
        assert optimizer.cost_model is chain_model
        assert optimizer.query is chain_query_4
        assert optimizer.finished is False


class TestRunSteps:
    """The shared stepping loop used by run(), the evaluators, and the
    benchmark task executor."""

    def test_returns_steps_taken(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        assert run_steps(optimizer, max_steps=5) == 5
        assert optimizer.statistics.steps == 5

    def test_zero_step_budget_takes_no_steps(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        assert run_steps(optimizer, max_steps=0) == 0
        assert optimizer.statistics.steps == 0

    def test_finished_stops_before_budget(self, chain_model):
        optimizer = CountingOptimizer(chain_model, finish_after=2)
        assert run_steps(optimizer, max_steps=50) == 2

    def test_time_budget_with_injected_clock(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        ticks = iter([0.0, 0.0, 1.0, 2.0, 3.0])
        assert run_steps(optimizer, time_budget=2.0, clock=lambda: next(ticks)) == 2

    def test_on_tick_observes_steps_and_elapsed(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        observed = []

        def on_tick(steps, elapsed):
            observed.append(steps)
            return False

        run_steps(optimizer, max_steps=3, on_tick=on_tick)
        # Called before each step and once more before the final budget check.
        assert observed == [0, 1, 2, 3]

    def test_on_tick_truthy_return_stops_run(self, chain_model):
        optimizer = CountingOptimizer(chain_model)
        taken = run_steps(optimizer, max_steps=100, on_tick=lambda steps, _: steps >= 4)
        assert taken == 4

    def test_on_tick_runs_once_more_after_finishing_step(self, chain_model):
        optimizer = CountingOptimizer(chain_model, finish_after=2)
        observed = []
        run_steps(
            optimizer, max_steps=10, on_tick=lambda steps, _: observed.append(steps)
        )
        # The tick after the second (finishing) step still fires, so
        # observers see the post-final-step state.
        assert observed == [0, 1, 2]
