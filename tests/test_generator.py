"""Unit tests for repro.query.generator."""

import random

import pytest

from repro.query.generator import (
    CARDINALITY_STRATA,
    GeneratorConfig,
    QueryGenerator,
    SelectivityModel,
)
from repro.query.join_graph import GraphShape, JoinGraph


@pytest.fixture
def generator(rng):
    return QueryGenerator(rng=rng)


class TestCardinalitySampling:
    def test_cardinality_within_strata(self, generator):
        for _ in range(200):
            cardinality = generator.sample_cardinality()
            assert any(low <= cardinality <= high for low, high in CARDINALITY_STRATA)

    def test_all_strata_hit(self, generator):
        samples = generator.sample_cardinalities(500)
        for low, high in CARDINALITY_STRATA:
            assert any(low <= value <= high for value in samples), (low, high)

    def test_batch_length(self, generator):
        assert len(generator.sample_cardinalities(17)) == 17


class TestSelectivitySampling:
    def test_steinbrunn_range(self, generator):
        for _ in range(200):
            selectivity = generator.sample_selectivity(1_000, 50_000)
            assert 1.0 / 50_000 <= selectivity <= 1.0

    def test_minmax_output_between_inputs(self, rng):
        generator = QueryGenerator(
            rng=rng,
            config=GeneratorConfig(selectivity_model=SelectivityModel.MINMAX),
        )
        for _ in range(200):
            card_a, card_b = 1_000.0, 50_000.0
            selectivity = generator.sample_selectivity(card_a, card_b)
            output = card_a * card_b * selectivity
            assert min(card_a, card_b) - 1e-6 <= output <= max(card_a, card_b) + 1e-6

    def test_minmax_selectivity_capped_at_one(self, rng):
        generator = QueryGenerator(
            rng=rng,
            config=GeneratorConfig(selectivity_model=SelectivityModel.MINMAX),
        )
        # With tiny tables the solved selectivity could exceed one; it is capped.
        for _ in range(50):
            assert generator.sample_selectivity(1.0, 1.0) <= 1.0


class TestQueryGeneration:
    @pytest.mark.parametrize("shape", list(GraphShape))
    def test_shapes_and_sizes(self, generator, shape):
        query = generator.generate(num_tables=6, shape=shape)
        assert query.num_tables == 6
        expected_edges = JoinGraph.edge_count_for_shape(shape, 6)
        assert query.join_graph.num_edges == expected_edges

    def test_default_name_contains_shape_and_size(self, generator):
        query = generator.generate(5, GraphShape.STAR)
        assert query.name == "star_5"

    def test_explicit_name(self, generator):
        query = generator.generate(5, GraphShape.STAR, name="custom")
        assert query.name == "custom"

    def test_zero_tables_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate(0)

    def test_single_table_query(self, generator):
        query = generator.generate(1, GraphShape.CHAIN)
        assert query.num_tables == 1
        assert query.join_graph.num_edges == 0

    def test_batch_generation(self, generator):
        queries = generator.generate_batch(4, num_tables=5, shape=GraphShape.CYCLE)
        assert len(queries) == 4
        assert len({query.name for query in queries}) == 4

    def test_reproducible_from_seed(self):
        first = QueryGenerator(rng=random.Random(7)).generate(8, GraphShape.CHAIN)
        second = QueryGenerator(rng=random.Random(7)).generate(8, GraphShape.CHAIN)
        assert [t.cardinality for t in first.tables] == [
            t.cardinality for t in second.tables
        ]
        assert list(first.join_graph.edges()) == list(second.join_graph.edges())

    def test_different_seeds_differ(self):
        first = QueryGenerator(rng=random.Random(1)).generate(8, GraphShape.CHAIN)
        second = QueryGenerator(rng=random.Random(2)).generate(8, GraphShape.CHAIN)
        assert [t.cardinality for t in first.tables] != [
            t.cardinality for t in second.tables
        ]

    def test_selectivities_respect_model_lower_bound(self, generator):
        query = generator.generate(10, GraphShape.CHAIN)
        for a, b, selectivity in query.join_graph.edges():
            bound = 1.0 / max(query.cardinality(a), query.cardinality(b))
            assert selectivity >= bound - 1e-12
            assert selectivity <= 1.0
