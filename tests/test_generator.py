"""Unit tests for repro.query.generator."""

import random

import pytest

from repro.query.catalog import job_sample_catalog
from repro.query.generator import (
    CARDINALITY_STRATA,
    SHAPE_MIN_TABLES,
    CardinalityModel,
    GeneratorConfig,
    QueryGenerator,
    SelectivityModel,
)
from repro.query.join_graph import GraphShape, JoinGraph


@pytest.fixture
def generator(rng):
    return QueryGenerator(rng=rng)


class TestCardinalitySampling:
    def test_cardinality_within_strata(self, generator):
        for _ in range(200):
            cardinality = generator.sample_cardinality()
            assert any(low <= cardinality <= high for low, high in CARDINALITY_STRATA)

    def test_all_strata_hit(self, generator):
        samples = generator.sample_cardinalities(500)
        for low, high in CARDINALITY_STRATA:
            assert any(low <= value <= high for value in samples), (low, high)

    def test_batch_length(self, generator):
        assert len(generator.sample_cardinalities(17)) == 17


class TestSelectivitySampling:
    def test_steinbrunn_range(self, generator):
        for _ in range(200):
            selectivity = generator.sample_selectivity(1_000, 50_000)
            assert 1.0 / 50_000 <= selectivity <= 1.0

    def test_minmax_output_between_inputs(self, rng):
        generator = QueryGenerator(
            rng=rng,
            config=GeneratorConfig(selectivity_model=SelectivityModel.MINMAX),
        )
        for _ in range(200):
            card_a, card_b = 1_000.0, 50_000.0
            selectivity = generator.sample_selectivity(card_a, card_b)
            output = card_a * card_b * selectivity
            assert min(card_a, card_b) - 1e-6 <= output <= max(card_a, card_b) + 1e-6

    def test_minmax_selectivity_capped_at_one(self, rng):
        generator = QueryGenerator(
            rng=rng,
            config=GeneratorConfig(selectivity_model=SelectivityModel.MINMAX),
        )
        # With tiny tables the solved selectivity could exceed one; it is capped.
        for _ in range(50):
            assert generator.sample_selectivity(1.0, 1.0) <= 1.0


class TestQueryGeneration:
    @pytest.mark.parametrize("shape", list(GraphShape))
    def test_shapes_and_sizes(self, generator, shape):
        query = generator.generate(num_tables=6, shape=shape)
        assert query.num_tables == 6
        expected_edges = JoinGraph.edge_count_for_shape(shape, 6)
        assert query.join_graph.num_edges == expected_edges

    def test_default_name_contains_shape_and_size(self, generator):
        query = generator.generate(5, GraphShape.STAR)
        assert query.name == "star_5"

    def test_explicit_name(self, generator):
        query = generator.generate(5, GraphShape.STAR, name="custom")
        assert query.name == "custom"

    def test_zero_tables_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate(0)

    def test_single_table_query(self, generator):
        query = generator.generate(1, GraphShape.CHAIN)
        assert query.num_tables == 1
        assert query.join_graph.num_edges == 0

    def test_batch_generation(self, generator):
        queries = generator.generate_batch(4, num_tables=5, shape=GraphShape.CYCLE)
        assert len(queries) == 4
        assert len({query.name for query in queries}) == 4

    def test_reproducible_from_seed(self):
        first = QueryGenerator(rng=random.Random(7)).generate(8, GraphShape.CHAIN)
        second = QueryGenerator(rng=random.Random(7)).generate(8, GraphShape.CHAIN)
        assert [t.cardinality for t in first.tables] == [
            t.cardinality for t in second.tables
        ]
        assert list(first.join_graph.edges()) == list(second.join_graph.edges())

    def test_different_seeds_differ(self):
        first = QueryGenerator(rng=random.Random(1)).generate(8, GraphShape.CHAIN)
        second = QueryGenerator(rng=random.Random(2)).generate(8, GraphShape.CHAIN)
        assert [t.cardinality for t in first.tables] != [
            t.cardinality for t in second.tables
        ]

    def test_selectivities_respect_model_lower_bound(self, generator):
        query = generator.generate(10, GraphShape.CHAIN)
        for a, b, selectivity in query.join_graph.edges():
            bound = 1.0 / max(query.cardinality(a), query.cardinality(b))
            assert selectivity >= bound - 1e-12
            assert selectivity <= 1.0


class TestShapeMinimumValidation:
    @pytest.mark.parametrize(
        "shape,minimum",
        [
            (GraphShape.CHAIN, 1),
            (GraphShape.STAR, 2),
            (GraphShape.CLIQUE, 2),
            (GraphShape.CYCLE, 3),
            (GraphShape.SNOWFLAKE, 4),
        ],
    )
    def test_boundary_accepted_below_rejected(self, shape, minimum):
        generator = QueryGenerator(rng=random.Random(11))
        query = generator.generate(minimum, shape)
        assert query.num_tables == minimum
        if minimum > 1:
            with pytest.raises(ValueError, match=shape.value):
                generator.generate(minimum - 1, shape)

    def test_error_names_shape_and_minimum(self):
        generator = QueryGenerator(rng=random.Random(11))
        with pytest.raises(ValueError, match=r"snowflake .* at least 4 .* got 3"):
            generator.generate(3, GraphShape.SNOWFLAKE)

    def test_minimums_match_shape_table(self):
        assert set(SHAPE_MIN_TABLES) == set(GraphShape)


class TestZipfCardinalities:
    @pytest.fixture
    def zipf_generator(self):
        return QueryGenerator(
            rng=random.Random(13),
            config=GeneratorConfig(cardinality_model=CardinalityModel.ZIPF),
        )

    def test_within_strata_bounds(self, zipf_generator):
        for _ in range(300):
            cardinality = zipf_generator.sample_cardinality()
            assert any(low <= cardinality <= high for low, high in CARDINALITY_STRATA)

    def test_skewed_towards_small_strata(self, zipf_generator):
        samples = zipf_generator.sample_cardinalities(2_000)
        first = sum(1 for v in samples if v <= CARDINALITY_STRATA[0][1])
        last = sum(1 for v in samples if v >= CARDINALITY_STRATA[-1][0])
        assert first > 2 * last

    def test_higher_skew_concentrates_more(self):
        def small_fraction(skew):
            generator = QueryGenerator(
                rng=random.Random(17),
                config=GeneratorConfig(
                    cardinality_model=CardinalityModel.ZIPF, zipf_skew=skew
                ),
            )
            samples = generator.sample_cardinalities(2_000)
            return sum(1 for v in samples if v <= CARDINALITY_STRATA[0][1])

        assert small_fraction(3.0) > small_fraction(0.5)

    def test_reproducible_from_seed(self):
        config = GeneratorConfig(cardinality_model=CardinalityModel.ZIPF)
        first = QueryGenerator(rng=random.Random(5), config=config)
        second = QueryGenerator(rng=random.Random(5), config=config)
        assert first.sample_cardinalities(50) == second.sample_cardinalities(50)

    def test_invalid_skew_rejected(self):
        with pytest.raises(ValueError, match="zipf_skew"):
            GeneratorConfig(zipf_skew=0.0)


class TestCorrelatedSelectivities:
    @pytest.fixture
    def correlated_generator(self):
        return QueryGenerator(
            rng=random.Random(19),
            config=GeneratorConfig(selectivity_model=SelectivityModel.CORRELATED),
        )

    def test_within_key_join_bounds(self, correlated_generator):
        for _ in range(300):
            card_a, card_b = 1_000.0, 50_000.0
            selectivity = correlated_generator.sample_selectivity(card_a, card_b)
            assert 1.0 / max(card_a, card_b) - 1e-15 <= selectivity <= 1.0

    def test_lower_than_steinbrunn_on_average(self):
        cards = (1_000.0, 50_000.0)

        def mean_selectivity(model):
            generator = QueryGenerator(
                rng=random.Random(23),
                config=GeneratorConfig(selectivity_model=model),
            )
            draws = [generator.sample_selectivity(*cards) for _ in range(500)]
            return sum(draws) / len(draws)

        assert mean_selectivity(SelectivityModel.CORRELATED) < mean_selectivity(
            SelectivityModel.STEINBRUNN
        )

    def test_strength_one_pins_key_join(self):
        generator = QueryGenerator(
            rng=random.Random(29),
            config=GeneratorConfig(
                selectivity_model=SelectivityModel.CORRELATED,
                correlation_strength=1.0,
            ),
        )
        for _ in range(50):
            assert generator.sample_selectivity(100.0, 400.0) == pytest.approx(
                1.0 / 400.0
            )

    def test_reproducible_from_seed(self):
        config = GeneratorConfig(selectivity_model=SelectivityModel.CORRELATED)

        def draws(seed):
            generator = QueryGenerator(rng=random.Random(seed), config=config)
            return [generator.sample_selectivity(500.0, 2_000.0) for _ in range(50)]

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)

    def test_invalid_strength_rejected(self):
        with pytest.raises(ValueError, match="correlation_strength"):
            GeneratorConfig(correlation_strength=0.0)
        with pytest.raises(ValueError, match="correlation_strength"):
            GeneratorConfig(correlation_strength=1.5)

    def test_query_edges_respect_bounds(self, correlated_generator):
        query = correlated_generator.generate(10, GraphShape.CHAIN)
        for a, b, selectivity in query.join_graph.edges():
            bound = 1.0 / max(query.cardinality(a), query.cardinality(b))
            assert bound - 1e-15 <= selectivity <= 1.0


class TestCatalogBackedGeneration:
    @pytest.fixture
    def catalog_generator(self):
        return QueryGenerator(
            rng=random.Random(31),
            config=GeneratorConfig(catalog=job_sample_catalog()),
        )

    def test_tables_come_from_catalog(self, catalog_generator):
        catalog = job_sample_catalog()
        query = catalog_generator.generate(5, GraphShape.STAR)
        for table in query.tables:
            assert catalog.has_table(table.name)
            assert table.cardinality == catalog.cardinality(table.name)
            assert table.row_width == catalog.row_width(table.name)

    def test_table_names_distinct(self, catalog_generator):
        query = catalog_generator.generate(8, GraphShape.CHAIN)
        names = [table.name for table in query.tables]
        assert len(set(names)) == len(names)

    def test_selectivities_use_join_key_distinct(self, catalog_generator):
        catalog = job_sample_catalog()
        query = catalog_generator.generate(6, GraphShape.SNOWFLAKE)
        for a, b, selectivity in query.join_graph.edges():
            expected = 1.0 / max(
                catalog.join_key_distinct(query.tables[a].name),
                catalog.join_key_distinct(query.tables[b].name),
            )
            assert selectivity == pytest.approx(expected)

    def test_reproducible_from_seed(self):
        config = GeneratorConfig(catalog=job_sample_catalog())
        first = QueryGenerator(rng=random.Random(37), config=config).generate(
            5, GraphShape.CYCLE
        )
        second = QueryGenerator(rng=random.Random(37), config=config).generate(
            5, GraphShape.CYCLE
        )
        assert [t.name for t in first.tables] == [t.name for t in second.tables]
        assert list(first.join_graph.edges()) == list(second.join_graph.edges())

    def test_oversized_draw_rejected(self, catalog_generator):
        with pytest.raises(ValueError, match="catalog holds"):
            catalog_generator.generate(13, GraphShape.CHAIN)
