"""Property and unit tests for the vectorized Pareto engine.

The engine (:mod:`repro.pareto.engine`) is the live path for frontier
insertion, the approximation-error indicator, and the hypervolume indicator.
These tests pin it against the pure-Python reference implementations
(:mod:`repro.pareto.dominance`, :mod:`repro.pareto.reference`, the scalar
functions in :mod:`repro.pareto.epsilon` / :mod:`repro.pareto.hypervolume`)
on random inputs: dominance matrices must match the pairwise scalar
relations, engine-backed frontiers must evolve identically to the scalar
container (same kept items, same order, same acceptance counts), the batched
ε indicator must be bit-identical to the scalar double loop, and the
hypervolume variants must agree up to floating-point accumulation.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pareto import engine
from repro.pareto.dominance import approx_dominates, dominates, strictly_dominates
from repro.pareto.epsilon import (
    approximation_error,
    approximation_error_scalar,
    is_alpha_approximation,
    is_alpha_approximation_scalar,
)
from repro.pareto.frontier import ParetoFrontier, pareto_filter
from repro.pareto.hypervolume import hypervolume, hypervolume_scalar
from repro.pareto.reference import ScalarParetoFrontier, scalar_pareto_filter

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
finite_cost = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
costs2 = st.tuples(finite_cost, finite_cost)
costs3 = st.tuples(finite_cost, finite_cost, finite_cost)
cost_lists3 = st.lists(costs3, min_size=1, max_size=40)
alphas = st.floats(min_value=1.0, max_value=50.0, allow_nan=False)

# Small-magnitude grids produce many dominance ties and duplicates, which is
# where sequential-equivalence bugs would hide.
gridded_cost = st.integers(min_value=0, max_value=4).map(float)
gridded3 = st.tuples(gridded_cost, gridded_cost, gridded_cost)
gridded_lists = st.lists(gridded3, min_size=1, max_size=40)


# ---------------------------------------------------------------------------
# Batched dominance vs. scalar relations
# ---------------------------------------------------------------------------
class TestDominanceMatrices:
    @given(cost_lists3, cost_lists3)
    def test_dominates_matrix_matches_scalar(self, first, second):
        matrix = engine.dominates_matrix(
            engine.as_cost_matrix(first), engine.as_cost_matrix(second)
        )
        for i, a in enumerate(first):
            for j, b in enumerate(second):
                assert matrix[i, j] == dominates(a, b)

    @given(cost_lists3, cost_lists3)
    def test_strict_matrix_matches_scalar(self, first, second):
        matrix = engine.strictly_dominates_matrix(
            engine.as_cost_matrix(first), engine.as_cost_matrix(second)
        )
        for i, a in enumerate(first):
            for j, b in enumerate(second):
                assert matrix[i, j] == strictly_dominates(a, b)

    @given(cost_lists3, cost_lists3, alphas)
    def test_approx_matrix_matches_scalar(self, first, second, alpha):
        matrix = engine.approx_dominates_matrix(
            engine.as_cost_matrix(first), engine.as_cost_matrix(second), alpha
        )
        for i, a in enumerate(first):
            for j, b in enumerate(second):
                assert matrix[i, j] == approx_dominates(a, b, alpha)

    def test_ragged_input_rejected(self):
        with pytest.raises(ValueError):
            engine.as_cost_matrix([(1.0, 2.0), (1.0,)])


# ---------------------------------------------------------------------------
# Engine-backed frontier vs. scalar reference container
# ---------------------------------------------------------------------------
class TestFrontierAgainstScalarReference:
    @given(cost_lists3, alphas)
    def test_sequential_insert_matches_reference(self, costs, alpha):
        vectorized: ParetoFrontier = ParetoFrontier(alpha=alpha)
        reference: ScalarParetoFrontier = ScalarParetoFrontier(alpha=alpha)
        for cost in costs:
            assert vectorized.insert(cost) == reference.insert(cost)
            assert vectorized.items() == reference.items()

    @given(gridded_lists, st.booleans())
    def test_batch_insert_matches_sequential_reference(self, costs, preload):
        vectorized: ParetoFrontier = ParetoFrontier()
        reference: ScalarParetoFrontier = ScalarParetoFrontier()
        if preload:
            seed = [(2.0, 2.0, 2.0), (0.0, 4.0, 1.0)]
            vectorized.insert_all(seed)
            for cost in seed:
                reference.insert(cost)
        accepted = vectorized.insert_all(costs)
        accepted_reference = sum(1 for cost in costs if reference.insert(cost))
        assert accepted == accepted_reference
        assert vectorized.items() == reference.items()

    @given(cost_lists3)
    def test_pareto_filter_matches_reference(self, costs):
        assert pareto_filter(costs) == scalar_pareto_filter(costs)

    @given(cost_lists3, costs3, alphas)
    def test_queries_match_reference(self, costs, probe, alpha):
        vectorized: ParetoFrontier = ParetoFrontier()
        reference: ScalarParetoFrontier = ScalarParetoFrontier()
        for cost in costs:
            vectorized.insert(cost)
            reference.insert(cost)
        assert vectorized.covers(probe, alpha) == reference.covers(probe, alpha)
        assert vectorized.dominated_by_any(probe) == reference.dominated_by_any(probe)

    def test_large_frontier_crosses_vectorized_threshold(self, rng):
        """Inserting past SMALL_SET_SIZE exercises the NumPy path end to end."""
        vectorized: ParetoFrontier = ParetoFrontier()
        reference: ScalarParetoFrontier = ScalarParetoFrontier()
        for _ in range(400):
            # Anti-correlated metrics keep almost every point non-dominated.
            u = rng.random()
            cost = (u, 1.0 - u, rng.random())
            assert vectorized.insert(cost) == reference.insert(cost)
        assert len(vectorized) > engine.SMALL_SET_SIZE
        assert vectorized.items() == reference.items()


# ---------------------------------------------------------------------------
# ParetoSet specifics (tags, eviction reporting)
# ---------------------------------------------------------------------------
class TestParetoSet:
    def test_tags_partition_the_comparisons(self):
        pareto_set = engine.ParetoSet()
        assert pareto_set.insert((1.0, 1.0), tag=0)[0]
        # Same cost, different tag: not compared, so kept.
        assert pareto_set.insert((1.0, 1.0), tag=1)[0]
        # Dominated within tag 0: rejected.
        assert not pareto_set.insert((2.0, 2.0), tag=0)[0]
        # Dominating within tag 1 evicts only the tag-1 row (index 1).
        accepted, evicted = pareto_set.insert((0.5, 0.5), tag=1)
        assert accepted and evicted == [1]
        assert pareto_set.costs() == [(1.0, 1.0), (0.5, 0.5)]

    def test_eviction_indices_refer_to_pre_insert_positions(self):
        pareto_set = engine.ParetoSet()
        pareto_set.insert((1.0, 5.0))
        pareto_set.insert((5.0, 1.0))
        pareto_set.insert((4.0, 4.0))
        accepted, evicted = pareto_set.insert((3.0, 3.0))
        assert accepted and evicted == [2]
        assert pareto_set.costs() == [(1.0, 5.0), (5.0, 1.0), (3.0, 3.0)]

    def test_dimension_mismatch_rejected(self):
        pareto_set = engine.ParetoSet()
        pareto_set.insert((1.0, 2.0))
        with pytest.raises(ValueError):
            pareto_set.insert((1.0, 2.0, 3.0))

    def test_clear_resets_dimension(self):
        pareto_set = engine.ParetoSet()
        pareto_set.insert((1.0, 2.0))
        pareto_set.clear()
        assert pareto_set.insert((1.0, 2.0, 3.0))[0]


# ---------------------------------------------------------------------------
# Approximation error: vectorized vs. scalar (bit-identical)
# ---------------------------------------------------------------------------
class TestApproximationErrorAgreement:
    @given(cost_lists3, cost_lists3)
    def test_error_is_bit_identical_to_scalar(self, produced, reference):
        assert approximation_error(produced, reference) == approximation_error_scalar(
            produced, reference
        )

    @given(cost_lists3, cost_lists3, alphas)
    def test_alpha_coverage_matches_scalar(self, produced, reference, alpha):
        assert is_alpha_approximation(
            produced, reference, alpha
        ) == is_alpha_approximation_scalar(produced, reference, alpha)

    def test_infinite_costs_match_scalar(self):
        """inf/inf component ratios are NaN; both paths must skip them.

        Regression test: the scalar ``max_ratio`` ignores NaN components, so
        a produced plan with an infinite metric must not silently count as a
        perfect cover of an infinite reference metric.
        """
        inf = float("inf")
        produced = [(inf, 2.0)]
        reference = [(inf, 1.0), (1.0, 1.0)]
        assert approximation_error_scalar(produced, reference) == inf
        assert approximation_error(produced, reference) == inf
        # Covering the inf reference point with a finite plan is factor-2
        # coverage of the finite metric and a zero ratio on the inf one.
        produced_finite = [(2.0, 2.0)]
        assert approximation_error(
            produced_finite, reference
        ) == approximation_error_scalar(produced_finite, reference)

    def test_large_inputs_chunked_reduction(self, rng):
        produced = [(rng.uniform(0.1, 10), rng.uniform(0.1, 10)) for _ in range(500)]
        reference = [(rng.uniform(0.1, 10), rng.uniform(0.1, 10)) for _ in range(500)]
        assert approximation_error(produced, reference) == approximation_error_scalar(
            produced, reference
        )


# ---------------------------------------------------------------------------
# Hypervolume: exact live path, fast sweep, scalar reference
# ---------------------------------------------------------------------------
class TestHypervolumeAgreement:
    @given(st.lists(costs2, min_size=0, max_size=15))
    def test_live_agrees_with_scalar_2d(self, costs):
        reference = (1e6 + 1.0, 1e6 + 1.0)
        exact = hypervolume(costs, reference)
        scalar = hypervolume_scalar(costs, reference)
        assert exact == pytest.approx(scalar, rel=1e-9, abs=1e-6)

    @given(st.lists(costs3, min_size=0, max_size=12))
    def test_live_agrees_with_scalar_3d(self, costs):
        reference = (1e6 + 1.0, 1e6 + 1.0, 1e6 + 1.0)
        exact = hypervolume(costs, reference)
        scalar = hypervolume_scalar(costs, reference)
        assert exact == pytest.approx(scalar, rel=1e-9, abs=1e-6)

    @given(st.lists(costs3, min_size=1, max_size=12))
    def test_fast_sweep_agrees_with_exact(self, costs):
        reference = (1e6 + 1.0,) * 3
        matrix = engine.as_cost_matrix([tuple(c) for c in costs])
        inside = np.all(matrix < np.asarray(reference), axis=1)
        cleaned = matrix[inside]
        if cleaned.shape[0] == 0:
            return
        front = cleaned[engine.pareto_kept_mask(cleaned)]
        fast = engine.hypervolume_sweep(front, reference)
        exact = engine.hypervolume_exact(front, reference)
        assert fast == pytest.approx(exact, rel=1e-9, abs=1e-6)

    @settings(max_examples=50)
    @given(st.lists(costs2, min_size=1, max_size=12), costs2, costs2)
    def test_exact_monotone_under_union(self, costs, extra_a, extra_b):
        """The live hypervolume never decreases when points are added."""
        reference = (1e6 + 1.0, 1e6 + 1.0)
        base = hypervolume(costs, reference)
        one = hypervolume(costs + [extra_a], reference)
        two = hypervolume(costs + [extra_a, extra_b], reference)
        assert one >= base
        assert two >= one

    def test_infinite_reference_bound_matches_scalar(self):
        """A +inf reference bound gives interior points infinite extent.

        Regression test: the rational sweep cannot represent inf, so the
        live path must short-circuit to the same values the scalar float
        recursion produces.
        """
        inf = float("inf")
        assert hypervolume([(1.0, 1.0)], (inf, 2.0)) == inf
        assert hypervolume_scalar([(1.0, 1.0)], (inf, 2.0)) == inf
        # NaN / -inf bounds admit no strictly-dominating point at all.
        assert hypervolume([(1.0, 1.0)], (float("nan"), 2.0)) == 0.0
        assert hypervolume([(1.0, 1.0)], (-inf, 2.0)) == 0.0
        assert hypervolume_scalar([(1.0, 1.0)], (-inf, 2.0)) == 0.0
        # A -inf point coordinate has infinite dominated extent (and a NaN
        # coordinate never passes the strictly-inside cleaning).
        assert hypervolume([(-inf, 1.0)], (10.0, 10.0)) == inf
        assert hypervolume_scalar([(-inf, 1.0)], (10.0, 10.0)) == inf
        assert hypervolume([(float("nan"), 1.0)], (10.0, 10.0)) == 0.0
        assert hypervolume_scalar([(float("nan"), 1.0)], (10.0, 10.0)) == 0.0

    def test_exact_monotone_on_seed_counterexample(self):
        """The case that broke floating-point accumulation in the seed."""
        costs = [(0.0, 137440.56456262816), (6.853751722207469e-135, 0.0)]
        extra = (2.225073858507e-311, 1.3213931992650032)
        reference = (1000001.0, 1000001.0)
        assert hypervolume(costs + [extra], reference) >= hypervolume(costs, reference)


# ---------------------------------------------------------------------------
# Sequential dominance fold (ParetoStep pruning kernel)
# ---------------------------------------------------------------------------
class TestDominanceFold:
    @given(gridded_lists)
    def test_fold_matches_sequential_scan(self, costs):
        matrix = engine.as_cost_matrix(costs)
        incumbent = 0
        for j in range(1, len(costs)):
            if strictly_dominates(costs[j], costs[incumbent]):
                incumbent = j
        assert engine.dominance_fold(matrix) == incumbent

    def test_fold_rejects_empty(self):
        with pytest.raises(ValueError):
            engine.dominance_fold(engine.as_cost_matrix([]))


def test_insert_speedup_is_measurable(rng):
    """Smoke-check that batch insertion beats scalar insertion on 1000 vectors.

    The full measurement (with the ≥3× acceptance threshold) lives in
    ``benchmarks/bench_micro_pareto.py``; this test only guards against the
    vectorized path silently degrading to something slower than the scalar
    reference.
    """
    import timeit

    vectors = [
        (rng.random() * 100, rng.random() * 100, rng.random() * 100)
        for _ in range(1000)
    ]

    def scalar_run():
        frontier: ScalarParetoFrontier = ScalarParetoFrontier()
        for vector in vectors:
            frontier.insert(vector)
        return len(frontier)

    def batch_run():
        frontier: ParetoFrontier = ParetoFrontier()
        frontier.insert_all(vectors)
        return len(frontier)

    assert scalar_run() == batch_run()
    scalar_time = min(timeit.repeat(scalar_run, number=1, repeat=3))
    batch_time = min(timeit.repeat(batch_run, number=1, repeat=3))
    assert batch_time < scalar_time
