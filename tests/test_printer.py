"""Unit tests for repro.plans.printer."""

import pytest

from repro.plans.printer import explain_plan, plan_signature


@pytest.fixture
def small_join(chain_model):
    scan_a = chain_model.default_scan(0)
    scan_b = chain_model.default_scan(1)
    return chain_model.default_join(scan_a, scan_b)


class TestPlanSignature:
    def test_scan_signature_uses_table_name(self, chain_model):
        assert plan_signature(chain_model.default_scan(0)) == "t0"

    def test_join_signature_nested(self, chain_model, small_join):
        signature = plan_signature(small_join)
        assert signature.startswith("(")
        assert "t0" in signature and "t1" in signature

    def test_signatures_differ_for_different_orders(self, chain_model):
        scans = [chain_model.default_scan(i) for i in range(3)]
        left = chain_model.default_join(chain_model.default_join(scans[0], scans[1]), scans[2])
        right = chain_model.default_join(scans[0], chain_model.default_join(scans[1], scans[2]))
        assert plan_signature(left) != plan_signature(right)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            plan_signature("not a plan")  # type: ignore[arg-type]


class TestExplainPlan:
    def test_explain_contains_operators_and_tables(self, small_join):
        text = explain_plan(small_join)
        assert "Join[" in text
        assert "Scan[" in text
        assert "t0" in text and "t1" in text

    def test_explain_has_one_line_per_node(self, small_join):
        text = explain_plan(small_join)
        assert len(text.splitlines()) == small_join.num_nodes

    def test_explain_uses_metric_names(self, small_join, chain_model):
        text = explain_plan(small_join, metric_names=chain_model.metric_names)
        assert "time=" in text
        assert "buffer=" in text

    def test_explain_default_metric_names(self, small_join):
        text = explain_plan(small_join)
        assert "m0=" in text

    def test_wrong_metric_name_count_rejected(self, small_join):
        with pytest.raises(ValueError):
            explain_plan(small_join, metric_names=["only_one"])

    def test_indentation_reflects_depth(self, chain_model):
        scans = [chain_model.default_scan(i) for i in range(3)]
        plan = chain_model.default_join(chain_model.default_join(scans[0], scans[1]), scans[2])
        lines = explain_plan(plan, indent="    ").splitlines()
        assert lines[0].startswith("Join")
        assert lines[1].startswith("    Join")
        assert lines[2].startswith("        Scan")
