"""Tests for repro.bench.runner (scenario execution) and reporting.

These are integration-style tests of the harness; they use a deliberately
tiny scenario (one shape, one size, two fast algorithms, short budget) so the
whole module runs in a few seconds.
"""

import random

import pytest

from repro.bench.reporting import format_scenario_report, summarize_winners
from repro.bench.runner import (
    CellResult,
    build_optimizer,
    run_scenario,
    _median_over_cases,
    _reference_alpha,
)
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.baselines.nsga2 import NSGA2Optimizer
from repro.core.rmq import RMQOptimizer
from repro.query.join_graph import GraphShape


@pytest.fixture(scope="module")
def tiny_spec():
    return ScenarioSpec(
        name="tiny",
        description="tiny runner test scenario",
        graph_shapes=(GraphShape.CHAIN,),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RMQ", "RandomSampling"),
        num_test_cases=2,
        time_budget=0.1,
        checkpoints=(0.05, 0.1),
        seed=7,
        scale=ScenarioScale.SMOKE,
    )


@pytest.fixture(scope="module")
def tiny_result(tiny_spec):
    return run_scenario(tiny_spec)


class TestRunScenario:
    def test_one_cell_per_shape_size_algorithm(self, tiny_result, tiny_spec):
        assert len(tiny_result.cells) == tiny_spec.num_cells * len(tiny_spec.algorithms)

    def test_cell_lookup(self, tiny_result):
        cell = tiny_result.cell(GraphShape.CHAIN, 4, "RMQ")
        assert isinstance(cell, CellResult)
        assert cell.algorithm == "RMQ"
        with pytest.raises(KeyError):
            tiny_result.cell(GraphShape.STAR, 4, "RMQ")

    def test_errors_are_at_least_one(self, tiny_result):
        for cell in tiny_result.cells:
            for error in cell.median_errors:
                assert error >= 1.0

    def test_errors_never_increase_over_checkpoints(self, tiny_result):
        """Frontiers only grow within a run, so the median error is non-increasing."""
        for cell in tiny_result.cells:
            errors = list(cell.median_errors)
            for earlier, later in zip(errors, errors[1:]):
                assert later <= earlier * (1 + 1e-9)

    def test_final_error_property(self, tiny_result):
        for cell in tiny_result.cells:
            assert cell.final_error == cell.median_errors[-1]

    def test_final_errors_by_algorithm(self, tiny_result, tiny_spec):
        grouped = tiny_result.final_errors_by_algorithm()
        assert set(grouped) == set(tiny_spec.algorithms)
        assert all(len(values) == tiny_spec.num_cells for values in grouped.values())

    def test_reference_makes_at_least_one_algorithm_finite(self, tiny_result):
        """The reference is the union of all results, so the best final error
        per cell is finite (some algorithm covers its own contribution)."""
        finals = [
            tiny_result.cell(GraphShape.CHAIN, 4, algorithm).final_error
            for algorithm in tiny_result.spec.algorithms
        ]
        assert min(finals) < float("inf")

    def test_error_cap_applied(self):
        spec = ScenarioSpec(
            name="capped",
            description="error cap test",
            graph_shapes=(GraphShape.CHAIN,),
            table_counts=(4,),
            num_metrics=2,
            algorithms=("RandomSampling",),
            num_test_cases=1,
            time_budget=0.05,
            checkpoints=(0.05,),
            error_cap=1.0,
            seed=3,
        )
        result = run_scenario(spec)
        assert all(error <= 1.0 for cell in result.cells for error in cell.median_errors)


class TestBuildOptimizer:
    def test_nsga_population_from_spec(self, tiny_spec, chain_model):
        spec = tiny_spec.with_scale_overrides(nsga_population=8)
        optimizer = build_optimizer("NSGA-II", chain_model, random.Random(0), spec)
        assert isinstance(optimizer, NSGA2Optimizer)
        assert optimizer.population_size == 8

    def test_rmq_uses_compressed_schedule_at_reduced_scale(self, tiny_spec, chain_model):
        optimizer = build_optimizer("RMQ", chain_model, random.Random(0), tiny_spec)
        assert isinstance(optimizer, RMQOptimizer)
        # Compressed schedule decays much faster than the paper schedule.
        assert optimizer._approximator.schedule.alpha(100) < 25.0 * 0.99

    def test_rmq_uses_paper_schedule_at_paper_scale(self, tiny_spec, chain_model):
        spec = tiny_spec.with_scale_overrides(scale=ScenarioScale.PAPER)
        optimizer = build_optimizer("RMQ", chain_model, random.Random(0), spec)
        assert optimizer._approximator.schedule.alpha(100) == pytest.approx(25.0 * 0.99**4)

    def test_reference_alpha_parsing(self):
        assert _reference_alpha("DP(1.01)") == pytest.approx(1.01)
        assert _reference_alpha("DP(Infinity)") == float("inf")
        with pytest.raises(ValueError):
            _reference_alpha("NSGA-II")


class TestMedianOverCases:
    INF = float("inf")

    def test_all_finite(self):
        assert _median_over_cases([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]) == [3.0, 4.0]

    def test_all_infinite_column_reports_inf(self):
        assert _median_over_cases([[self.INF], [self.INF]]) == [self.INF]

    def test_mixed_column_inf_sorts_last(self):
        # Odd count: the middle of [1, 3, inf] is 3.
        assert _median_over_cases([[1.0], [self.INF], [3.0]]) == [3.0]

    def test_mixed_even_count_can_report_inf(self):
        # Even count: the median of [1, inf] is the mean, which is inf.
        assert _median_over_cases([[1.0], [self.INF]]) == [self.INF]

    def test_majority_infinite_reports_inf(self):
        assert _median_over_cases([[1.0], [self.INF], [self.INF]]) == [self.INF]

    def test_empty_input(self):
        assert _median_over_cases([]) == []


class TestParallelRunner:
    @pytest.fixture(scope="class")
    def deterministic_spec(self):
        """Step-driven spec: results must be identical for any worker count."""
        return ScenarioSpec(
            name="parallel",
            description="parallel determinism test scenario",
            graph_shapes=(GraphShape.CHAIN, GraphShape.STAR),
            table_counts=(4,),
            num_metrics=2,
            algorithms=("RandomSampling", "RMQ"),
            num_test_cases=2,
            step_checkpoints=(2, 4),
            seed=11,
            scale=ScenarioScale.SMOKE,
        )

    def test_workers_reproduce_sequential_results(self, deterministic_spec):
        sequential = run_scenario(deterministic_spec, workers=1)
        parallel = run_scenario(deterministic_spec, workers=2)
        assert parallel.cells == sequential.cells

    def test_workers_from_spec(self, deterministic_spec):
        import dataclasses

        spec = dataclasses.replace(deterministic_spec, workers=2)
        assert run_scenario(spec).cells == run_scenario(deterministic_spec).cells

    def test_step_checkpoints_reported_as_checkpoint_values(self, deterministic_spec):
        result = run_scenario(deterministic_spec)
        for cell in result.cells:
            assert cell.checkpoints == (2.0, 4.0)

    def test_step_driven_report_labels_steps_not_seconds(self, deterministic_spec):
        report = format_scenario_report(run_scenario(deterministic_spec))
        assert "step=2  step=4" in report
        assert "budget=4 steps" in report
        # No wall-clock column labels (t=0.25s etc.) in a step-driven report.
        assert "t=0" not in report

    def test_invalid_worker_count_rejected(self, deterministic_spec):
        with pytest.raises(ValueError):
            run_scenario(deterministic_spec, workers=0)


class TestReporting:
    def test_report_mentions_all_algorithms_and_cells(self, tiny_result, tiny_spec):
        report = format_scenario_report(tiny_result)
        for algorithm in tiny_spec.algorithms:
            assert algorithm in report
        assert "Chain, 4 tables" in report
        assert "t=0.05s" in report

    def test_summarize_winners_counts(self, tiny_result):
        summary = summarize_winners(tiny_result)
        assert "Winners per cell" in summary
        assert "Win counts" in summary

    def test_report_formats_infinite_errors(self):
        spec = ScenarioSpec(
            name="inf",
            description="DP cannot finish on a larger query in 50 ms",
            graph_shapes=(GraphShape.CHAIN,),
            table_counts=(8,),
            num_metrics=2,
            algorithms=("DP(2)", "RandomSampling"),
            num_test_cases=1,
            time_budget=0.05,
            checkpoints=(0.05,),
            seed=5,
        )
        result = run_scenario(spec)
        report = format_scenario_report(result)
        assert "inf" in report
