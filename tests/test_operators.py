"""Unit tests for repro.plans.operators."""

import pytest

from repro.plans.operators import (
    DataFormat,
    JoinAlgorithm,
    JoinOperator,
    OperatorLibrary,
    ScanAlgorithm,
    ScanOperator,
)


class TestScanOperator:
    def test_defaults(self):
        op = ScanOperator("seq")
        assert op.algorithm is ScanAlgorithm.FULL
        assert op.output_format is DataFormat.PIPELINED
        assert op.sampling_rate == 1.0
        assert op.parallelism == 1
        assert not op.is_join

    def test_invalid_sampling_rate(self):
        with pytest.raises(ValueError):
            ScanOperator("s", sampling_rate=0.0)
        with pytest.raises(ValueError):
            ScanOperator("s", sampling_rate=1.5)

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            ScanOperator("s", parallelism=0)


class TestJoinOperator:
    def test_defaults(self):
        op = JoinOperator("hj", JoinAlgorithm.HASH)
        assert op.is_join
        assert not op.requires_materialized_inner

    def test_nested_loop_requires_materialized_inner(self):
        bnl = JoinOperator("bnl", JoinAlgorithm.BLOCK_NESTED_LOOP)
        nl = JoinOperator("nl", JoinAlgorithm.NESTED_LOOP)
        assert bnl.requires_materialized_inner
        assert nl.requires_materialized_inner

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            JoinOperator("hj", JoinAlgorithm.HASH, memory_pages=0)

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            JoinOperator("hj", JoinAlgorithm.HASH, parallelism=0)


class TestOperatorLibrary:
    def test_default_library_structure(self):
        library = OperatorLibrary.default()
        assert len(library.scan_operators) >= 2
        assert len(library.join_operators) >= 4
        assert library.num_operators == len(library.scan_operators) + len(
            library.join_operators
        )

    def test_lookup_by_name(self):
        library = OperatorLibrary.default()
        assert library.join_operator("hash_join").algorithm is JoinAlgorithm.HASH
        assert library.scan_operator("seq_scan").algorithm is ScanAlgorithm.FULL
        with pytest.raises(KeyError):
            library.join_operator("nope")
        with pytest.raises(KeyError):
            library.scan_operator("nope")

    def test_applicability_restricts_nested_loops(self):
        library = OperatorLibrary.default()
        pipelined = library.applicable_join_operators(
            DataFormat.PIPELINED, DataFormat.PIPELINED
        )
        materialized = library.applicable_join_operators(
            DataFormat.PIPELINED, DataFormat.MATERIALIZED
        )
        assert all(not op.requires_materialized_inner for op in pipelined)
        assert len(materialized) >= len(pipelined)
        assert any(op.requires_materialized_inner for op in materialized)

    def test_every_input_has_applicable_join(self):
        library = OperatorLibrary.default()
        for outer in DataFormat:
            for inner in DataFormat:
                assert library.applicable_join_operators(outer, inner)

    def test_duplicate_names_rejected(self):
        scan = ScanOperator("s")
        join = JoinOperator("j", JoinAlgorithm.HASH)
        with pytest.raises(ValueError):
            OperatorLibrary(scan_operators=(scan, scan), join_operators=(join,))

    def test_empty_library_rejected(self):
        join = JoinOperator("j", JoinAlgorithm.HASH)
        with pytest.raises(ValueError):
            OperatorLibrary(scan_operators=(), join_operators=(join,))
        with pytest.raises(ValueError):
            OperatorLibrary(scan_operators=(ScanOperator("s"),), join_operators=())

    def test_library_needs_universally_applicable_join(self):
        scan = ScanOperator("s")
        bnl_only = (JoinOperator("bnl", JoinAlgorithm.BLOCK_NESTED_LOOP),)
        with pytest.raises(ValueError):
            OperatorLibrary(scan_operators=(scan,), join_operators=bnl_only)

    def test_minimal_library(self):
        library = OperatorLibrary.minimal()
        assert len(library.scan_operators) == 1
        assert len(library.join_operators) == 1

    def test_cloud_library_parallelism_variants(self):
        library = OperatorLibrary.cloud(parallelism_levels=(1, 8))
        parallelisms = {op.parallelism for op in library.join_operators}
        assert parallelisms == {1, 8}
        with pytest.raises(ValueError):
            OperatorLibrary.cloud(parallelism_levels=())

    def test_sampling_library_rates(self):
        library = OperatorLibrary.sampling(sampling_rates=(1.0, 0.5))
        rates = {op.sampling_rate for op in library.scan_operators}
        assert rates == {1.0, 0.5}
        with pytest.raises(ValueError):
            OperatorLibrary.sampling(sampling_rates=())
