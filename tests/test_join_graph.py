"""Unit tests for repro.query.join_graph."""

import pytest

from repro.query.join_graph import (
    GraphShape,
    JoinGraph,
    snowflake_arm_lengths,
    snowflake_edges,
)


class TestEdgeManagement:
    def test_add_and_query_edge(self):
        graph = JoinGraph(3)
        graph.add_edge(0, 1, 0.5)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.edge_selectivity(0, 1) == 0.5
        assert graph.edge_selectivity(1, 0) == 0.5

    def test_missing_edge_has_selectivity_one(self):
        graph = JoinGraph(3)
        assert not graph.has_edge(0, 2)
        assert graph.edge_selectivity(0, 2) == 1.0

    def test_self_edge_rejected(self):
        graph = JoinGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1, 0.5)

    def test_out_of_range_endpoint_rejected(self):
        graph = JoinGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 3, 0.5)

    def test_invalid_selectivity_rejected(self):
        graph = JoinGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 1.5)

    def test_zero_tables_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph(0)

    def test_edges_iteration_sorted(self):
        graph = JoinGraph(4)
        graph.add_edge(2, 3, 0.3)
        graph.add_edge(0, 1, 0.1)
        assert list(graph.edges()) == [(0, 1, 0.1), (2, 3, 0.3)]

    def test_num_edges(self):
        graph = JoinGraph(4, edges={(0, 1): 0.1, (1, 2): 0.2})
        assert graph.num_edges == 2
        assert graph.num_tables == 4


class TestSelectivityBetween:
    def test_single_crossing_edge(self):
        graph = JoinGraph(4, edges={(0, 1): 0.1, (1, 2): 0.2, (2, 3): 0.3})
        assert graph.selectivity_between({0}, {1}) == pytest.approx(0.1)

    def test_multiple_crossing_edges_multiply(self):
        graph = JoinGraph(4, edges={(0, 2): 0.1, (1, 3): 0.5})
        assert graph.selectivity_between({0, 1}, {2, 3}) == pytest.approx(0.05)

    def test_no_crossing_edge_is_cartesian(self):
        graph = JoinGraph(4, edges={(0, 1): 0.1})
        assert graph.selectivity_between({0, 1}, {2, 3}) == 1.0

    def test_internal_edges_ignored(self):
        graph = JoinGraph(4, edges={(0, 1): 0.001, (1, 2): 0.5})
        # the (0, 1) edge is internal to the left side and must not count
        assert graph.selectivity_between({0, 1}, {2}) == pytest.approx(0.5)

    def test_overlapping_sets_rejected(self):
        graph = JoinGraph(3)
        with pytest.raises(ValueError):
            graph.selectivity_between({0, 1}, {1, 2})


class TestConnectivity:
    def test_neighbors(self):
        graph = JoinGraph.star(4, [0.1, 0.2, 0.3])
        assert graph.neighbors(0) == frozenset({1, 2, 3})
        assert graph.neighbors(2) == frozenset({0})

    def test_connected_subset_chain(self):
        graph = JoinGraph.chain(5, [0.1] * 4)
        assert graph.is_connected_subset({1, 2, 3})
        assert not graph.is_connected_subset({0, 2})
        assert graph.is_connected_subset({4})

    def test_connected_subset_star(self):
        graph = JoinGraph.star(5, [0.1] * 4)
        assert graph.is_connected_subset({0, 3})
        assert not graph.is_connected_subset({1, 2})

    def test_empty_subset_not_connected(self):
        graph = JoinGraph.chain(3, [0.1, 0.1])
        assert not graph.is_connected_subset(set())


class TestBuilders:
    def test_chain_edges(self):
        graph = JoinGraph.chain(4, [0.1, 0.2, 0.3])
        assert graph.num_edges == 3
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2) and graph.has_edge(2, 3)
        assert not graph.has_edge(0, 3)

    def test_cycle_edges(self):
        graph = JoinGraph.cycle(4, [0.1, 0.2, 0.3, 0.4])
        assert graph.num_edges == 4
        assert graph.has_edge(3, 0)

    def test_cycle_of_two_is_single_edge(self):
        graph = JoinGraph.cycle(2, [0.1])
        assert graph.num_edges == 1

    def test_star_edges(self):
        graph = JoinGraph.star(5, [0.1, 0.2, 0.3, 0.4])
        assert graph.num_edges == 4
        assert all(graph.has_edge(0, i) for i in range(1, 5))
        assert not graph.has_edge(1, 2)

    def test_clique_edges(self):
        graph = JoinGraph.clique(4, [0.1] * 6)
        assert graph.num_edges == 6
        assert all(graph.has_edge(a, b) for a in range(4) for b in range(a + 1, 4))

    def test_wrong_selectivity_count_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph.chain(4, [0.1, 0.2])
        with pytest.raises(ValueError):
            JoinGraph.star(4, [0.1, 0.2, 0.3, 0.4])

    def test_from_shape_dispatch(self):
        for shape in GraphShape:
            expected = JoinGraph.edge_count_for_shape(shape, 5)
            graph = JoinGraph.from_shape(shape, 5, [0.1] * expected)
            assert graph.num_edges == expected

    def test_edge_count_for_shape(self):
        assert JoinGraph.edge_count_for_shape(GraphShape.CHAIN, 10) == 9
        assert JoinGraph.edge_count_for_shape(GraphShape.CYCLE, 10) == 10
        assert JoinGraph.edge_count_for_shape(GraphShape.STAR, 10) == 9
        assert JoinGraph.edge_count_for_shape(GraphShape.CLIQUE, 10) == 45


class TestSnowflake:
    def test_arm_lengths_partition_spokes(self):
        for num_tables in range(4, 40):
            lengths = snowflake_arm_lengths(num_tables)
            assert sum(lengths) == num_tables - 1
            assert max(lengths) - min(lengths) <= 1
            assert lengths == sorted(lengths, reverse=True)

    def test_arm_lengths_examples(self):
        assert snowflake_arm_lengths(4) == [2, 1]
        assert snowflake_arm_lengths(5) == [2, 2]
        assert snowflake_arm_lengths(10) == [3, 3, 3]

    def test_edges_cover_all_tables_once(self):
        for num_tables in (4, 7, 10, 13):
            edges = snowflake_edges(num_tables)
            assert len(edges) == num_tables - 1
            non_hub = [t for edge in edges for t in edge if t != 0]
            assert sorted(set(non_hub)) == list(range(1, num_tables))

    def test_hub_degree_is_arm_count(self):
        for num_tables in (4, 9, 12):
            edges = snowflake_edges(num_tables)
            hub_degree = sum(1 for a, b in edges if a == 0 or b == 0)
            assert hub_degree == len(snowflake_arm_lengths(num_tables))

    def test_builder_matches_edge_helper(self):
        num_tables = 8
        selectivities = [0.1 * (i + 1) / 10 for i in range(num_tables - 1)]
        graph = JoinGraph.snowflake(num_tables, selectivities)
        for (a, b), selectivity in zip(snowflake_edges(num_tables), selectivities):
            assert graph.edge_selectivity(a, b) == selectivity

    def test_snowflake_is_connected(self):
        graph = JoinGraph.snowflake(10, [0.5] * 9)
        assert graph.is_connected_subset(range(10))

    def test_wrong_selectivity_count_rejected(self):
        with pytest.raises(ValueError):
            JoinGraph.snowflake(6, [0.1, 0.2])

    def test_from_shape_and_edge_count(self):
        assert JoinGraph.edge_count_for_shape(GraphShape.SNOWFLAKE, 10) == 9
        graph = JoinGraph.from_shape(GraphShape.SNOWFLAKE, 6, [0.2] * 5)
        assert graph.num_edges == 5
