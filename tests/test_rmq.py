"""Unit and behaviour tests for repro.core.rmq (Algorithm 1)."""

import random

import pytest

from repro.core.frontier import AlphaSchedule
from repro.core.rmq import RMQOptimizer
from repro.pareto.dominance import strictly_dominates
from repro.plans.validation import validate_plan


@pytest.fixture
def optimizer(chain_model):
    return RMQOptimizer(chain_model, rng=random.Random(1))


class TestBasicBehaviour:
    def test_no_result_before_first_step(self, optimizer):
        assert optimizer.frontier() == []
        assert optimizer.iteration == 0

    def test_one_step_produces_complete_plans(self, optimizer, chain_query_4, chain_model):
        optimizer.step()
        frontier = optimizer.frontier()
        assert frontier
        for plan in frontier:
            assert plan.rel == chain_query_4.relations
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_iteration_counter_and_statistics(self, optimizer):
        for _ in range(3):
            optimizer.step()
        assert optimizer.iteration == 3
        assert optimizer.statistics.steps == 3
        assert optimizer.statistics.plans_built > 0
        assert len(optimizer.climb_path_lengths) == 3
        assert "mean_path_length" in optimizer.statistics.extra

    def test_never_finished(self, optimizer):
        assert optimizer.finished is False
        optimizer.step()
        assert optimizer.finished is False

    def test_run_with_step_budget(self, chain_model):
        optimizer = RMQOptimizer(chain_model, rng=random.Random(2))
        frontier = optimizer.run(max_steps=5)
        assert optimizer.iteration == 5
        assert frontier

    def test_run_requires_some_budget(self, optimizer):
        with pytest.raises(ValueError):
            optimizer.run()

    def test_current_alpha_tracks_schedule(self, chain_model):
        optimizer = RMQOptimizer(
            chain_model, rng=random.Random(0), schedule=AlphaSchedule.constant(7.0)
        )
        assert optimizer.current_alpha == 7.0

    def test_reproducible_with_same_seed(self, chain_model):
        first = RMQOptimizer(chain_model, rng=random.Random(42))
        second = RMQOptimizer(chain_model, rng=random.Random(42))
        first.run(max_steps=5)
        second.run(max_steps=5)
        first_costs = sorted(plan.cost for plan in first.frontier())
        second_costs = sorted(plan.cost for plan in second.frontier())
        assert first_costs == second_costs


class TestResultQuality:
    def test_frontier_is_mutually_non_dominated_per_format(self, optimizer):
        optimizer.run(max_steps=8)
        frontier = optimizer.frontier()
        for first in frontier:
            for second in frontier:
                if first is second or first.output_format is not second.output_format:
                    continue
                assert not strictly_dominates(first.cost, second.cost) or (
                    first.cost == second.cost
                )

    def test_more_iterations_do_not_hurt_coverage(self, chain_model):
        """The best (minimum) cost per metric never degrades over iterations."""
        optimizer = RMQOptimizer(chain_model, rng=random.Random(5))
        optimizer.run(max_steps=3)
        early = optimizer.frontier()
        early_best = [min(plan.cost[i] for plan in early) for i in range(3)]
        optimizer.run(max_steps=10)
        late = optimizer.frontier()
        late_best = [min(plan.cost[i] for plan in late) for i in range(3)]
        for early_value, late_value in zip(early_best, late_best):
            assert late_value <= early_value * (1.0 + 1e-9)

    def test_plan_cache_contains_intermediate_results(self, optimizer, chain_query_4):
        optimizer.run(max_steps=5)
        cache = optimizer.plan_cache
        assert len(cache) > 1
        assert all(rel <= chain_query_4.relations for rel in cache.table_sets())

    def test_beats_random_sampling_with_same_plan_budget(self, cycle_model):
        """RMQ should dominate naive random sampling given comparable effort."""
        from repro.baselines.random_sampling import RandomSamplingOptimizer
        from repro.pareto.epsilon import approximation_error
        from repro.pareto.frontier import pareto_filter

        rmq = RMQOptimizer(cycle_model, rng=random.Random(7))
        rmq.run(max_steps=10)
        sampler = RandomSamplingOptimizer(cycle_model, rng=random.Random(7), plans_per_step=30)
        sampler.run(max_steps=10)

        rmq_costs = [plan.cost for plan in rmq.frontier()]
        sample_costs = [plan.cost for plan in sampler.frontier()]
        reference = pareto_filter(rmq_costs + sample_costs)
        rmq_error = approximation_error(rmq_costs, reference)
        sample_error = approximation_error(sample_costs, reference)
        assert rmq_error <= sample_error


class TestVariants:
    def test_left_deep_variant(self, chain_model, chain_query_4):
        optimizer = RMQOptimizer(chain_model, rng=random.Random(3), left_deep_only=True)
        optimizer.run(max_steps=3)
        assert optimizer.frontier()

    def test_no_climbing_variant(self, chain_model):
        optimizer = RMQOptimizer(chain_model, rng=random.Random(3), use_climbing=False)
        optimizer.run(max_steps=3)
        assert optimizer.frontier()
        assert all(length == 0 for length in optimizer.climb_path_lengths)

    def test_no_cache_variant_keeps_only_complete_plans(self, chain_model, chain_query_4):
        optimizer = RMQOptimizer(chain_model, rng=random.Random(3), use_plan_cache=False)
        optimizer.run(max_steps=4)
        assert optimizer.frontier()
        # Partial plans are dropped at the start of each iteration; after the
        # last frontier approximation only table sets used by the last plan
        # remain, which is at most 2n - 1 of them.
        assert len(optimizer.plan_cache) <= 2 * chain_query_4.num_tables - 1

    def test_custom_schedule_used(self, chain_model):
        optimizer = RMQOptimizer(
            chain_model, rng=random.Random(3), schedule=AlphaSchedule.constant(1.0)
        )
        coarse = RMQOptimizer(
            chain_model, rng=random.Random(3), schedule=AlphaSchedule.constant(25.0)
        )
        optimizer.run(max_steps=5)
        coarse.run(max_steps=5)
        assert len(optimizer.frontier()) >= len(coarse.frontier())
