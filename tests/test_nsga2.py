"""Tests for the NSGA-II baseline."""

import random

import pytest

from repro.baselines.nsga2 import Individual, NSGA2Optimizer
from repro.pareto.dominance import strictly_dominates
from repro.plans.validation import validate_plan


@pytest.fixture
def optimizer(chain_model):
    return NSGA2Optimizer(chain_model, rng=random.Random(4), population_size=12)


class TestConstruction:
    def test_invalid_population_rejected(self, chain_model):
        with pytest.raises(ValueError):
            NSGA2Optimizer(chain_model, population_size=1)

    def test_invalid_crossover_probability_rejected(self, chain_model):
        with pytest.raises(ValueError):
            NSGA2Optimizer(chain_model, crossover_probability=1.5)

    def test_paper_default_population_is_200(self, chain_model):
        optimizer = NSGA2Optimizer(chain_model)
        assert optimizer.population_size == 200


class TestEncoding:
    def test_random_genome_length(self, optimizer, chain_query_4):
        genome = optimizer._random_genome()
        n = chain_query_4.num_tables
        assert len(genome) == 2 * n + 2 * (n - 1)

    def test_decode_produces_valid_complete_plan(self, optimizer, chain_query_4, chain_model):
        for _ in range(20):
            genome = optimizer._random_genome()
            plan = optimizer.decode(genome)
            assert plan.rel == chain_query_4.relations
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_decode_is_deterministic(self, optimizer):
        genome = optimizer._random_genome()
        assert optimizer.decode(genome).cost == optimizer.decode(genome).cost

    def test_crossover_children_are_decodable(self, optimizer, chain_query_4):
        first = optimizer._random_genome()
        second = optimizer._random_genome()
        child_a, child_b = optimizer._crossover(first, second)
        assert optimizer.decode(child_a).rel == chain_query_4.relations
        assert optimizer.decode(child_b).rel == chain_query_4.relations

    def test_mutation_keeps_genes_in_range(self, optimizer):
        genome = optimizer._random_genome()
        mutated = optimizer._mutate(genome)
        assert len(mutated) == len(genome)
        for position, gene in enumerate(mutated):
            assert 0 <= gene < optimizer._gene_range(position)

    def test_different_genomes_can_give_different_join_orders(self, optimizer):
        signatures = set()
        for _ in range(30):
            plan = optimizer.decode(optimizer._random_genome())
            signatures.add(plan.join_order_signature())
        assert len(signatures) > 3


class TestEvolution:
    def test_first_step_initializes_population(self, optimizer):
        optimizer.step()
        assert len(optimizer.population) == 12
        assert optimizer.frontier()

    def test_population_size_stable_across_generations(self, optimizer):
        for _ in range(4):
            optimizer.step()
        assert len(optimizer.population) == 12

    def test_frontier_is_rank_zero_and_non_dominated(self, optimizer):
        for _ in range(3):
            optimizer.step()
        frontier = optimizer.frontier()
        assert frontier
        for first in frontier:
            for second in frontier:
                if first is second:
                    continue
                assert not strictly_dominates(first.cost, second.cost)

    def test_elitism_best_cost_never_regresses(self, chain_model):
        optimizer = NSGA2Optimizer(chain_model, rng=random.Random(9), population_size=16)
        optimizer.step()
        best_initial = min(ind.cost[0] for ind in optimizer.population)
        for _ in range(5):
            optimizer.step()
        best_final = min(ind.cost[0] for ind in optimizer.population)
        assert best_final <= best_initial

    def test_statistics_updated(self, optimizer):
        optimizer.run(max_steps=2)
        assert optimizer.statistics.steps == 2
        assert optimizer.statistics.plans_built >= 12


class TestNonDominatedSortAndCrowding:
    def _individual(self, optimizer, cost):
        plan = optimizer.decode(optimizer._random_genome())
        individual = Individual(genome=(), plan=plan)
        # Override the cost via a stand-in plan attribute for sorting tests.
        individual.plan = type(
            "FakePlan", (), {"cost": cost, "num_nodes": 1}
        )()
        return individual

    def test_fast_non_dominated_sort_ranks(self, optimizer):
        population = [
            self._individual(optimizer, (1.0, 1.0)),
            self._individual(optimizer, (2.0, 2.0)),
            self._individual(optimizer, (1.0, 3.0)),
            self._individual(optimizer, (3.0, 3.0)),
        ]
        fronts = NSGA2Optimizer._fast_non_dominated_sort(population)
        assert [ind.cost for ind in fronts[0]] == [(1.0, 1.0)]
        assert population[0].rank == 0
        assert population[3].rank == max(ind.rank for ind in population)

    def test_crowding_boundary_points_infinite(self, optimizer):
        front = [
            self._individual(optimizer, (1.0, 4.0)),
            self._individual(optimizer, (2.0, 3.0)),
            self._individual(optimizer, (4.0, 1.0)),
        ]
        NSGA2Optimizer._assign_crowding(front)
        crowdings = sorted(ind.crowding for ind in front)
        assert crowdings[-1] == float("inf")
        assert crowdings[-2] == float("inf")
        assert crowdings[0] < float("inf")


class TestVectorizedEquivalence:
    """The vectorized sort/crowding must reproduce the scalar specification
    exactly — ranks, crowding values, and the order of individuals within
    fronts (which downstream stable sorts tie-break on)."""

    def _population(self, optimizer, costs):
        individuals = []
        for cost in costs:
            individual = Individual(genome=(), plan=None)
            individual.plan = type("FakePlan", (), {"cost": cost, "num_nodes": 1})()
            individuals.append(individual)
        return individuals

    def _random_costs(self, rng, count, metrics, values=6):
        # Coarse integer grid: plenty of duplicate costs and per-metric ties,
        # the cases where an inexact reimplementation would diverge.
        return [
            tuple(float(rng.randrange(values)) for _ in range(metrics))
            for _ in range(count)
        ]

    def test_sort_matches_scalar_on_random_populations(self, optimizer):
        rng = random.Random(20160626)
        for _ in range(50):
            costs = self._random_costs(rng, rng.randrange(1, 25), rng.choice([2, 3]))
            vectorized = self._population(optimizer, costs)
            scalar = self._population(optimizer, costs)
            fronts_vec = NSGA2Optimizer._fast_non_dominated_sort(vectorized)
            fronts_ref = NSGA2Optimizer._fast_non_dominated_sort_scalar(scalar)
            positions_vec = [
                [vectorized.index(ind) for ind in front] for front in fronts_vec
            ]
            positions_ref = [
                [scalar.index(ind) for ind in front] for front in fronts_ref
            ]
            assert positions_vec == positions_ref
            assert [ind.rank for ind in vectorized] == [ind.rank for ind in scalar]

    def test_crowding_matches_scalar_on_random_fronts(self, optimizer):
        rng = random.Random(7)
        for _ in range(50):
            costs = self._random_costs(rng, rng.randrange(1, 20), rng.choice([2, 3]))
            vectorized = self._population(optimizer, costs)
            scalar = self._population(optimizer, costs)
            original_vec, original_ref = list(vectorized), list(scalar)
            NSGA2Optimizer._assign_crowding(vectorized)
            NSGA2Optimizer._assign_crowding_scalar(scalar)
            # Same final list order (the scalar path re-sorts in place)...
            assert [original_vec.index(ind) for ind in vectorized] == [
                original_ref.index(ind) for ind in scalar
            ]
            # ...and bit-identical crowding values, infinities included.
            for index in range(len(costs)):
                assert original_vec[index].crowding == original_ref[index].crowding

    def test_full_evolution_matches_scalar_path(self, chain_model):
        def evolve(use_scalar):
            optimizer = NSGA2Optimizer(
                chain_model, rng=random.Random(42), population_size=12
            )
            if use_scalar:
                optimizer._fast_non_dominated_sort = (
                    NSGA2Optimizer._fast_non_dominated_sort_scalar
                )
                optimizer._assign_crowding = NSGA2Optimizer._assign_crowding_scalar
            for _ in range(5):
                optimizer.step()
            return [
                (ind.genome, ind.rank, ind.crowding) for ind in optimizer.population
            ]

        assert evolve(use_scalar=False) == evolve(use_scalar=True)
