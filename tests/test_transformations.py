"""Unit tests for repro.plans.transformations."""

import pytest

from repro.plans.plan import JoinPlan
from repro.plans.transformations import TransformationRules
from repro.plans.validation import validate_plan


@pytest.fixture
def rules():
    return TransformationRules()


@pytest.fixture
def three_way_plan(chain_model):
    scans = [chain_model.default_scan(i) for i in range(3)]
    inner_join = chain_model.default_join(scans[0], scans[1])
    return chain_model.default_join(inner_join, scans[2])


class TestScanMutations:
    def test_identity_always_included(self, chain_model, rules):
        scan = chain_model.default_scan(0)
        mutations = rules.mutations(scan, chain_model)
        assert scan in mutations

    def test_operator_alternatives_generated(self, chain_model, rules):
        scan = chain_model.default_scan(0)
        mutations = rules.mutations(scan, chain_model)
        assert len(mutations) == len(chain_model.scan_operators(0))
        operators = {m.operator.name for m in mutations}
        assert operators == {op.name for op in chain_model.scan_operators(0)}

    def test_operator_change_can_be_disabled(self, chain_model):
        rules = TransformationRules(enable_operator_change=False)
        scan = chain_model.default_scan(0)
        assert rules.mutations(scan, chain_model) == [scan]


class TestJoinMutations:
    def test_mutations_preserve_table_set(self, chain_model, rules, three_way_plan):
        for mutated in rules.mutations(three_way_plan, chain_model):
            assert mutated.rel == three_way_plan.rel

    def test_mutations_are_valid_plans(self, chain_model, chain_query_4, rules):
        scans = [chain_model.default_scan(i) for i in range(4)]
        plan = chain_model.default_join(
            chain_model.default_join(scans[0], scans[1]),
            chain_model.default_join(scans[2], scans[3]),
        )
        for mutated in rules.mutations(plan, chain_model):
            validate_plan(mutated, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_commutativity_present(self, chain_model, rules):
        scans = [chain_model.default_scan(i) for i in range(2)]
        plan = chain_model.default_join(scans[0], scans[1])
        signatures = {
            m.join_order_signature() for m in rules.mutations(plan, chain_model)
        }
        swapped = ("join", ("scan", 1), ("scan", 0))
        assert swapped in signatures

    def test_associativity_present(self, chain_model, rules, three_way_plan):
        # ((0 ⋈ 1) ⋈ 2)  →  (0 ⋈ (1 ⋈ 2))
        signatures = {
            m.join_order_signature()
            for m in rules.mutations(three_way_plan, chain_model)
        }
        rotated = ("join", ("scan", 0), ("join", ("scan", 1), ("scan", 2)))
        assert rotated in signatures

    def test_exchange_present(self, chain_model, rules, three_way_plan):
        # ((0 ⋈ 1) ⋈ 2)  →  ((0 ⋈ 2) ⋈ 1)
        signatures = {
            m.join_order_signature()
            for m in rules.mutations(three_way_plan, chain_model)
        }
        exchanged = ("join", ("join", ("scan", 0), ("scan", 2)), ("scan", 1))
        assert exchanged in signatures

    def test_associativity_can_be_disabled(self, chain_model, three_way_plan):
        rules = TransformationRules(enable_associativity=False)
        signatures = {
            m.join_order_signature()
            for m in rules.mutations(three_way_plan, chain_model)
        }
        rotated = ("join", ("scan", 0), ("join", ("scan", 1), ("scan", 2)))
        assert rotated not in signatures

    def test_exchange_can_be_disabled(self, chain_model, three_way_plan):
        rules = TransformationRules(enable_exchange=False)
        signatures = {
            m.join_order_signature()
            for m in rules.mutations(three_way_plan, chain_model)
        }
        exchanged = ("join", ("join", ("scan", 0), ("scan", 2)), ("scan", 1))
        assert exchanged not in signatures

    def test_right_deep_rules(self, chain_model, rules):
        scans = [chain_model.default_scan(i) for i in range(3)]
        plan = chain_model.default_join(scans[0], chain_model.default_join(scans[1], scans[2]))
        signatures = {
            m.join_order_signature() for m in rules.mutations(plan, chain_model)
        }
        # right associativity: 0 ⋈ (1 ⋈ 2) → (0 ⋈ 1) ⋈ 2
        assert ("join", ("join", ("scan", 0), ("scan", 1)), ("scan", 2)) in signatures
        # right exchange: 0 ⋈ (1 ⋈ 2) → 1 ⋈ (0 ⋈ 2)
        assert ("join", ("scan", 1), ("join", ("scan", 0), ("scan", 2))) in signatures

    def test_mutation_count_bounded(self, chain_model, rules, three_way_plan):
        num_join_ops = len(chain_model.library.join_operators)
        mutations = rules.mutations(three_way_plan, chain_model)
        # identity + operator changes + (commute + assoc + exchange) * ops is a
        # loose constant bound that must not explode.
        assert len(mutations) <= 1 + num_join_ops + 3 * (num_join_ops + 1) + 3 * num_join_ops

    def test_minimal_library_single_table_has_only_identity(self, minimal_model):
        scan = minimal_model.default_scan(0)
        rules = TransformationRules()
        assert rules.mutations(scan, minimal_model) == [scan]


class TestRebuildJoin:
    def test_preferred_operator_kept_when_applicable(self, chain_model, rules):
        scans = [chain_model.default_scan(i) for i in range(2)]
        operator = chain_model.library.join_operator("sort_merge_join")
        rebuilt = rules.rebuild_join(scans[0], scans[1], operator, chain_model)
        assert rebuilt.operator == operator

    def test_fallback_when_not_applicable(self, chain_model, rules):
        scans = [chain_model.default_scan(i) for i in range(2)]
        bnl = chain_model.library.join_operator("bnl_join_small")
        # Default scans are pipelined, so a nested-loop style join is not
        # applicable and the rebuild must fall back to an applicable operator.
        rebuilt = rules.rebuild_join(scans[0], scans[1], bnl, chain_model)
        assert isinstance(rebuilt, JoinPlan)
        assert rebuilt.operator in chain_model.join_operators(scans[0], scans[1])
