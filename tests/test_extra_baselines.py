"""Tests for the weighted-sum and random-sampling sanity baselines."""

import random

import pytest

from repro.baselines.random_sampling import RandomSamplingOptimizer
from repro.baselines.weighted_sum import WeightedSumOptimizer
from repro.pareto.dominance import strictly_dominates
from repro.plans.validation import validate_plan


class TestRandomSampling:
    def test_invalid_configuration_rejected(self, chain_model):
        with pytest.raises(ValueError):
            RandomSamplingOptimizer(chain_model, plans_per_step=0)

    def test_step_produces_valid_plans(self, chain_model, chain_query_4):
        optimizer = RandomSamplingOptimizer(chain_model, rng=random.Random(1))
        optimizer.step()
        frontier = optimizer.frontier()
        assert frontier
        for plan in frontier:
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_archive_non_dominated(self, chain_model):
        optimizer = RandomSamplingOptimizer(chain_model, rng=random.Random(2))
        optimizer.run(max_steps=5)
        frontier = optimizer.frontier()
        for first in frontier:
            for second in frontier:
                if first is not second:
                    assert not strictly_dominates(first.cost, second.cost)

    def test_statistics_count_sampled_plans(self, chain_model):
        optimizer = RandomSamplingOptimizer(
            chain_model, rng=random.Random(3), plans_per_step=4
        )
        optimizer.run(max_steps=2)
        assert optimizer.statistics.steps == 2
        assert optimizer.statistics.plans_built >= 8


class TestWeightedSum:
    def test_step_produces_valid_plans(self, chain_model, chain_query_4):
        optimizer = WeightedSumOptimizer(chain_model, rng=random.Random(1))
        optimizer.step()
        frontier = optimizer.frontier()
        assert frontier
        for plan in frontier:
            validate_plan(plan, chain_query_4, chain_model.library, chain_model.num_metrics)

    def test_weights_are_normalized(self, chain_model):
        optimizer = WeightedSumOptimizer(chain_model, rng=random.Random(5))
        for _ in range(10):
            weights = optimizer._random_weights()
            assert len(weights) == chain_model.num_metrics
            assert sum(weights) == pytest.approx(1.0)
            assert all(weight > 0 for weight in weights)

    def test_scalarized_climb_improves_scalar_cost(self, chain_model):
        optimizer = WeightedSumOptimizer(chain_model, rng=random.Random(6))
        optimizer.run(max_steps=3)
        assert optimizer.statistics.plans_built > 0
        assert optimizer.frontier()

    def test_archive_non_dominated(self, chain_model):
        optimizer = WeightedSumOptimizer(chain_model, rng=random.Random(7))
        optimizer.run(max_steps=5)
        frontier = optimizer.frontier()
        for first in frontier:
            for second in frontier:
                if first is not second:
                    assert not strictly_dominates(first.cost, second.cost)
