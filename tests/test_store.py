"""Equivalence tests for the tiered frontier stores.

The stores in :mod:`repro.pareto.store` are pure search accelerators: for
any sequence of insertions (single, batch, or interleaved — "merges"), the
frontier contents, their order, and every accept/evict decision must be
*bit-identical* across the flat path, the sorted tier, the ND-tree tier, and
the ``auto`` policy.  These tests pin that under adversarial inputs:
duplicate costs, non-finite costs, all-dominated and all-incomparable
batches, tagged rows, α > 1, and randomized insert/merge interleavings —
property-tested against the flat reference (and, at the protocol level,
each indexed store against :class:`~repro.pareto.store.FlatFrontier`).

The store-accelerated consumers are covered too: the climber's windowed
dominance fold and NSGA-II's sorted-order non-dominated sort must reproduce
their specifications exactly, including within-front order.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import nsga2
from repro.baselines.nsga2 import Individual, NSGA2Optimizer
from repro.pareto import store as store_module
from repro.pareto.engine import ParetoSet, as_cost_matrix, dominance_fold
from repro.pareto.frontier import ParetoFrontier, pareto_filter
from repro.pareto.reference import ScalarParetoFrontier
from repro.pareto.store import (
    AUTO_ENGAGE_SIZE,
    FlatFrontier,
    NDTreeFrontier,
    SortedFrontier,
    auto_store_kind,
    make_store,
    resolve_store_policy,
    sorted_dominance_fold,
)

ALL_POLICIES = ("flat", "sorted", "ndtree", "auto")
INDEXED_KINDS = ("sorted", "ndtree")

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
finite_cost = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
# Small grids maximize dominance ties and duplicates.
gridded_cost = st.integers(min_value=0, max_value=3).map(float)
# Adversarial component values including non-finite ones.
weird_cost = st.one_of(
    gridded_cost,
    finite_cost,
    st.sampled_from([float("inf"), float("-inf"), float("nan")]),
)


def vectors(component, dim, max_size=60):
    return st.lists(
        st.tuples(*[component] * dim), min_size=1, max_size=max_size
    )


def make_sets(store_kwargs=()):
    return {policy: ParetoSet(store=policy) for policy in ALL_POLICIES}


def assert_all_equal(values, context=""):
    first = values[ALL_POLICIES[0]]
    for policy, value in values.items():
        assert _normalized(value) == _normalized(first), (
            f"{context}: store {policy!r} diverged from flat"
        )


def _normalized(value):
    # NaN != NaN would make equal frontiers compare unequal; compare reprs of
    # floats instead, which distinguishes every bit pattern we care about.
    if isinstance(value, tuple):
        return tuple(_normalized(v) for v in value)
    if isinstance(value, list):
        return [_normalized(v) for v in value]
    if isinstance(value, float):
        return repr(value)
    return value


# ---------------------------------------------------------------------------
# ParetoSet equivalence across stores
# ---------------------------------------------------------------------------
class TestParetoSetEquivalence:
    @given(vectors(gridded_cost, 3), st.floats(min_value=1.0, max_value=3.0))
    def test_gridded_sequences(self, rows, alpha):
        sets = make_sets()
        for row in rows:
            results = {
                policy: pareto.insert(row, alpha=alpha)
                for policy, pareto in sets.items()
            }
            assert_all_equal(results, f"insert({row})")
        assert_all_equal(
            {policy: pareto.costs() for policy, pareto in sets.items()}, "costs"
        )

    @given(vectors(weird_cost, 3))
    def test_non_finite_sequences(self, rows):
        sets = make_sets()
        for row in rows:
            results = {
                policy: pareto.insert(row) for policy, pareto in sets.items()
            }
            assert_all_equal(results, f"insert({row})")
        assert_all_equal(
            {policy: pareto.costs() for policy, pareto in sets.items()}, "costs"
        )

    @given(vectors(gridded_cost, 4, max_size=40), vectors(gridded_cost, 4, max_size=80))
    def test_batch_after_seed(self, seed_rows, batch):
        outcomes = {}
        for policy in ALL_POLICIES:
            pareto = ParetoSet(store=policy)
            for row in seed_rows:
                pareto.insert(row)
            accepted, kept, surviving = pareto.insert_batch(batch)
            outcomes[policy] = (
                accepted,
                kept,
                surviving.tolist(),
                pareto.costs(),
            )
        assert_all_equal(outcomes, "insert_batch")

    @given(
        st.lists(
            st.tuples(st.booleans(), st.tuples(gridded_cost, gridded_cost)),
            min_size=1,
            max_size=40,
        )
    )
    def test_insert_merge_interleavings(self, script):
        """Random interleavings of single inserts and batch merges."""
        sets = make_sets()
        pending = []
        for is_merge, row in script:
            if is_merge and pending:
                outcomes = {
                    policy: pareto.insert_batch(list(pending))[:2]
                    for policy, pareto in sets.items()
                }
                assert_all_equal(outcomes, "merge")
                pending = []
            else:
                pending.append(row)
                outcomes = {
                    policy: pareto.insert(row) for policy, pareto in sets.items()
                }
                assert_all_equal(outcomes, f"insert({row})")
        assert_all_equal(
            {policy: pareto.costs() for policy, pareto in sets.items()}, "costs"
        )

    def test_all_dominated_batch(self):
        sets = make_sets()
        for pareto in sets.values():
            pareto.insert((0.0, 0.0, 0.0))
            accepted, kept, surviving = pareto.insert_batch(
                [(float(i % 5 + 1), float(i % 3 + 1), float(i % 7 + 1)) for i in range(400)]
            )
            assert accepted == 0
            assert kept == []
            assert surviving.tolist() == [True]
            assert pareto.costs() == [(0.0, 0.0, 0.0)]

    def test_all_incomparable_batch(self):
        rows = [(float(i), float(1000 - i)) for i in range(600)]
        outcomes = {}
        for policy in ALL_POLICIES:
            pareto = ParetoSet(store=policy)
            accepted, kept, surviving = pareto.insert_batch(rows)
            outcomes[policy] = (accepted, kept, surviving.tolist(), pareto.costs())
            assert accepted == len(rows)
        assert_all_equal(outcomes, "incomparable batch")

    def test_duplicate_costs_first_occurrence_kept(self):
        for policy in ALL_POLICIES:
            pareto = ParetoSet(store=policy)
            assert pareto.insert((1.0, 2.0)) == (True, [])
            assert pareto.insert((1.0, 2.0)) == (False, [])
            assert pareto.insert((2.0, 1.0)) == (True, [])
            assert pareto.insert((1.0, 1.0)) == (True, [0, 1])
            assert pareto.costs() == [(1.0, 1.0)]

    @given(vectors(gridded_cost, 2, max_size=50))
    def test_tagged_insertions(self, rows):
        sets = make_sets()
        for index, row in enumerate(rows):
            tag = index % 3
            results = {
                policy: pareto.insert(row, tag=tag)
                for policy, pareto in sets.items()
            }
            assert_all_equal(results, f"insert({row}, tag={tag})")
        assert_all_equal(
            {policy: pareto.costs() for policy, pareto in sets.items()}, "costs"
        )

    @given(vectors(gridded_cost, 3, max_size=50), st.lists(st.tuples(gridded_cost, gridded_cost, gridded_cost), min_size=1, max_size=20))
    def test_queries_agree(self, rows, queries):
        sets = make_sets()
        for pareto in sets.values():
            for row in rows:
                pareto.insert(row)
        for query in queries:
            outcomes = {
                policy: (
                    pareto.covers(query, 1.0),
                    pareto.covers(query, 2.0),
                    pareto.strictly_dominates_any(query),
                )
                for policy, pareto in sets.items()
            }
            assert_all_equal(outcomes, f"queries({query})")

    def test_matches_scalar_reference_on_random_rows(self):
        rng = random.Random(20160626)
        rows = [
            tuple(float(rng.randrange(6)) for _ in range(3)) for _ in range(500)
        ]
        reference: ScalarParetoFrontier = ScalarParetoFrontier()
        for row in rows:
            reference.insert(row)
        for policy in ALL_POLICIES:
            pareto = ParetoSet(store=policy)
            for row in rows:
                pareto.insert(row)
            assert pareto.costs() == reference.items()

    def test_clear_resets_store(self):
        pareto = ParetoSet(store="sorted")
        for i in range(50):
            pareto.insert((float(i), float(50 - i)))
        assert pareto.store_name == "sorted"
        pareto.clear()
        assert len(pareto) == 0
        assert pareto.store_name == "flat"
        pareto.insert((1.0, 2.0, 3.0))  # dimension may change after clear
        assert pareto.costs() == [(1.0, 2.0, 3.0)]


# ---------------------------------------------------------------------------
# Policy resolution and the auto tier
# ---------------------------------------------------------------------------
class TestStorePolicy:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_store_policy("btree")

    def test_env_variable_pins_policy(self, monkeypatch):
        monkeypatch.setenv(store_module.STORE_ENV_VAR, "sorted")
        assert resolve_store_policy(None) == "sorted"
        assert ParetoSet().store_policy == "sorted"
        # Explicit arguments win over the environment.
        assert resolve_store_policy("flat") == "flat"
        monkeypatch.setenv(store_module.STORE_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            resolve_store_policy(None)

    def test_auto_engages_by_size_and_metric_count(self):
        incomparable = [(float(i), float(10_000 - i)) for i in range(AUTO_ENGAGE_SIZE + 10)]
        pareto = ParetoSet()  # auto
        for row in incomparable[: AUTO_ENGAGE_SIZE - 1]:
            pareto.insert(row)
        assert pareto.store_name == "flat"
        for row in incomparable[AUTO_ENGAGE_SIZE - 1 :]:
            pareto.insert(row)
        assert pareto.store_name == "sorted"  # 2 metrics -> sorted tier

        five = [
            (float(i), float(10_000 - i), 1.0, 1.0, 1.0)
            for i in range(AUTO_ENGAGE_SIZE + 10)
        ]
        pareto = ParetoSet()
        for row in five:
            pareto.insert(row)
        assert pareto.store_name == "ndtree"  # 5 metrics -> ND-tree tier

    def test_auto_kind_threshold(self):
        assert auto_store_kind(2) == "sorted"
        assert auto_store_kind(store_module.SORTED_MAX_METRICS) == "sorted"
        assert auto_store_kind(store_module.SORTED_MAX_METRICS + 1) == "ndtree"

    def test_explicit_store_engages_immediately(self):
        for kind in INDEXED_KINDS:
            pareto = ParetoSet(store=kind)
            pareto.insert((1.0, 2.0))
            pareto.insert((2.0, 1.0))
            assert pareto.store_name == kind


# ---------------------------------------------------------------------------
# Protocol-level property tests: indexed stores vs the flat reference store
# ---------------------------------------------------------------------------
@st.composite
def store_scripts(draw):
    """A sequence of (row, tag) adds with interleaved removals."""
    dim = draw(st.integers(min_value=1, max_value=4))
    size = draw(st.integers(min_value=1, max_value=60))
    rows = [
        tuple(draw(weird_cost) for _ in range(dim)) for _ in range(size)
    ]
    tags = [draw(st.integers(min_value=0, max_value=2)) for _ in range(size)]
    removals = draw(
        st.lists(st.integers(min_value=0, max_value=size - 1), max_size=size // 2)
    )
    return dim, rows, tags, removals


class TestStoreProtocol:
    @settings(deadline=None)
    @given(store_scripts(), st.tuples(weird_cost, weird_cost, weird_cost, weird_cost))
    def test_indexed_stores_match_flat_reference(self, script, probe):
        dim, rows, tags, removals = script
        query = np.asarray(probe[:dim], dtype=np.float64)
        oracle = FlatFrontier(dim)
        subjects = [
            SortedFrontier(dim, block_size=4),  # tiny blocks: exercise splits
            NDTreeFrontier(dim, leaf_size=4),
        ]
        stores = [oracle] + subjects
        for row_id, (row, tag) in enumerate(zip(rows, tags)):
            array = np.asarray(row, dtype=np.float64)
            for frontier_store in stores:
                frontier_store.add(row_id, array, tag)
        removed = sorted({index for index in removals})
        if removed:
            for frontier_store in stores:
                frontier_store.remove_ids(removed)
        for frontier_store in stores:
            assert len(frontier_store) == len(rows) - len(removed)
        for alpha in (1.0, 1.5):
            for tag in (None, 0, 1):
                expected = oracle.any_covering(query, alpha, tag)
                for subject in subjects:
                    assert subject.any_covering(query, alpha, tag) == expected, (
                        subject.name, alpha, tag)
        for tag in (None, 0, 1, 2):
            expected_ids = sorted(oracle.dominated_ids(query, tag))
            for subject in subjects:
                assert sorted(subject.dominated_ids(query, tag)) == expected_ids, (
                    subject.name, tag)
        expected_strict = oracle.any_strictly_dominating(query)
        for subject in subjects:
            assert subject.any_strictly_dominating(query) == expected_strict, (
                subject.name)

    def test_bulk_load_matches_incremental(self):
        rng = random.Random(3)
        rows = np.asarray(
            [[float(rng.randrange(5)) for _ in range(3)] for _ in range(200)]
        )
        ids = list(range(200))
        tags = [0] * 200
        for kind in INDEXED_KINDS:
            loaded = make_store(kind, 3)
            loaded.bulk_load(ids, rows, tags)
            incremental = make_store(kind, 3)
            for row_id in ids:
                incremental.add(row_id, rows[row_id], 0)
            for _ in range(50):
                query = np.asarray([float(rng.randrange(6)) for _ in range(3)])
                assert sorted(loaded.dominated_ids(query, None)) == sorted(
                    incremental.dominated_ids(query, None)
                )
                assert loaded.any_covering(query, 1.0, None) == (
                    incremental.any_covering(query, 1.0, None)
                )

    def test_make_store_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_store("hash", 3)


# ---------------------------------------------------------------------------
# Consumers: ParetoFrontier / pareto_filter / climber fold / NSGA-II sort
# ---------------------------------------------------------------------------
class TestFrontierConsumers:
    @given(vectors(gridded_cost, 3, max_size=60))
    def test_pareto_frontier_items_identical(self, rows):
        frontiers = {
            policy: ParetoFrontier(store=policy) for policy in ALL_POLICIES
        }
        for policy, frontier in frontiers.items():
            for row in rows:
                frontier.insert(row)
        reference = frontiers["flat"].items()
        for policy, frontier in frontiers.items():
            assert frontier.items() == reference, policy

    @given(vectors(gridded_cost, 3, max_size=120))
    def test_pareto_filter_identical(self, rows):
        reference = pareto_filter(rows, store="flat")
        for policy in ("sorted", "ndtree", "auto"):
            assert pareto_filter(rows, store=policy) == reference, policy

    def test_frontier_store_name_diagnostic(self):
        frontier: ParetoFrontier = ParetoFrontier(store="sorted")
        frontier.insert_all([(float(i), float(100 - i)) for i in range(10)])
        assert frontier.store_name == "sorted"


class TestSortedDominanceFold:
    @given(
        st.lists(
            st.tuples(gridded_cost, gridded_cost, gridded_cost),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_plain_fold(self, rows):
        matrix = as_cost_matrix(rows)
        assert sorted_dominance_fold(matrix) == dominance_fold(matrix)

    def test_single_row(self):
        assert sorted_dominance_fold(as_cost_matrix([(1.0, 2.0)])) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sorted_dominance_fold(np.empty((0, 2)))


class _CostOnlyPlan:
    __slots__ = ("cost",)

    def __init__(self, cost):
        self.cost = cost


def _population(costs):
    return [Individual(genome=(), plan=_CostOnlyPlan(cost)) for cost in costs]


class TestIndexedNonDominatedSort:
    @given(
        st.lists(
            st.tuples(gridded_cost, gridded_cost, gridded_cost),
            min_size=1,
            max_size=80,
        )
    )
    def test_matches_scalar_specification(self, costs):
        scalar_population = _population(costs)
        indexed_population = _population(costs)
        scalar_fronts = NSGA2Optimizer._fast_non_dominated_sort_scalar(
            scalar_population
        )
        indexed_fronts = NSGA2Optimizer._fast_non_dominated_sort_indexed(
            indexed_population
        )
        assert [
            [ind.plan.cost for ind in front] for front in scalar_fronts
        ] == [[ind.plan.cost for ind in front] for front in indexed_fronts]
        assert [ind.rank for ind in scalar_population] == [
            ind.rank for ind in indexed_population
        ]

    def test_dispatches_above_threshold(self, monkeypatch):
        monkeypatch.setattr(nsga2, "INDEXED_SORT_MIN_POPULATION", 8)
        rng = random.Random(11)
        costs = [
            (float(rng.randrange(4)), float(rng.randrange(4))) for _ in range(40)
        ]
        dispatched = _population(costs)
        scalar = _population(costs)
        fronts = NSGA2Optimizer._fast_non_dominated_sort(dispatched)
        expected = NSGA2Optimizer._fast_non_dominated_sort_scalar(scalar)
        assert [[ind.plan.cost for ind in front] for front in fronts] == [
            [ind.plan.cost for ind in front] for front in expected
        ]

    def test_whole_evolution_identical_under_forced_dispatch(self, monkeypatch):
        from repro.cost.model import MultiObjectiveCostModel
        from repro.query.generator import QueryGenerator
        from repro.query.join_graph import GraphShape

        def evolve():
            rng = random.Random(5)
            query = QueryGenerator(rng=rng).generate(5, GraphShape.CHAIN)
            model = MultiObjectiveCostModel(query, metrics=("time", "buffer"))
            optimizer = NSGA2Optimizer(
                model, rng=random.Random(9), population_size=12
            )
            for _ in range(4):
                optimizer.step()
            # ``ind.cost`` reads the same vector under both plan engines
            # (the arena engine stores handles in ``ind.plan``).
            return [
                (ind.genome, ind.cost, ind.rank, ind.crowding)
                for ind in optimizer.population
            ]

        baseline = evolve()
        monkeypatch.setattr(nsga2, "INDEXED_SORT_MIN_POPULATION", 1)
        forced = evolve()
        assert forced == baseline


class TestPlanCacheAndClimberStores:
    def test_plan_cache_identical_across_stores(self, chain_model):
        from repro.core.plan_cache import PlanCache
        from repro.core.random_plans import RandomPlanGenerator

        caches = {policy: PlanCache(store=policy) for policy in ALL_POLICIES}
        generator = RandomPlanGenerator(chain_model, random.Random(2))
        plans = [generator.random_bushy_plan() for _ in range(40)]
        for cache in caches.values():
            for plan in plans:
                for node in _all_nodes(plan):
                    cache.insert(node, alpha=1.1)
        reference = caches["flat"]
        for policy, cache in caches.items():
            assert len(cache) == len(reference), policy
            for relations in reference.table_sets():
                assert cache.frontier_costs(relations) == (
                    reference.frontier_costs(relations)
                ), policy

    def test_climber_identical_across_stores(self, chain_model):
        from repro.core.pareto_climb import ParetoClimber
        from repro.core.random_plans import RandomPlanGenerator

        start = RandomPlanGenerator(
            chain_model, random.Random(4)
        ).random_bushy_plan()
        results = {
            policy: ParetoClimber(chain_model, store=policy).climb(start)
            for policy in ALL_POLICIES
        }
        reference = results["flat"]
        for policy, result in results.items():
            assert result.plan.cost == reference.plan.cost, policy
            assert result.path_length == reference.path_length, policy


def _all_nodes(plan):
    from repro.plans.plan import JoinPlan

    yield plan
    if isinstance(plan, JoinPlan):
        yield from _all_nodes(plan.outer)
        yield from _all_nodes(plan.inner)
