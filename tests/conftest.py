"""Shared fixtures for the test suite.

The fixtures provide small, fully deterministic queries (fixed cardinalities
and selectivities rather than random generation) so that tests exercising
plan costs and search behaviour are reproducible without seeding tricks.
"""

from __future__ import annotations

import random

import pytest

from repro.cost.model import MultiObjectiveCostModel
from repro.plans.operators import OperatorLibrary
from repro.query.join_graph import JoinGraph
from repro.query.query import Query
from repro.query.table import Table


def build_query(cardinalities, edges, name="test_query"):
    """Build a query from a list of cardinalities and (a, b, selectivity) edges."""
    tables = [
        Table(index=i, name=f"t{i}", cardinality=float(card))
        for i, card in enumerate(cardinalities)
    ]
    graph = JoinGraph(len(tables))
    for a, b, selectivity in edges:
        graph.add_edge(a, b, selectivity)
    return Query(tables, graph, name=name)


@pytest.fixture
def rng():
    """A deterministic random number generator."""
    return random.Random(20160626)


@pytest.fixture
def chain_query_4():
    """A 4-table chain query with mixed cardinalities."""
    return build_query(
        cardinalities=[100, 10_000, 500, 2_000],
        edges=[(0, 1, 0.01), (1, 2, 0.001), (2, 3, 0.005)],
        name="chain4",
    )


@pytest.fixture
def star_query_5():
    """A 5-table star query: table 0 is the hub."""
    return build_query(
        cardinalities=[50_000, 100, 200, 300, 400],
        edges=[(0, 1, 0.01), (0, 2, 0.005), (0, 3, 0.002), (0, 4, 0.01)],
        name="star5",
    )


@pytest.fixture
def cycle_query_6():
    """A 6-table cycle query."""
    return build_query(
        cardinalities=[100, 1_000, 10_000, 500, 5_000, 200],
        edges=[
            (0, 1, 0.01),
            (1, 2, 0.001),
            (2, 3, 0.002),
            (3, 4, 0.01),
            (4, 5, 0.05),
            (5, 0, 0.02),
        ],
        name="cycle6",
    )


@pytest.fixture
def two_table_query():
    """The smallest join query (two tables, one predicate)."""
    return build_query(
        cardinalities=[1_000, 5_000],
        edges=[(0, 1, 0.001)],
        name="two_tables",
    )


@pytest.fixture
def single_table_query():
    """A query consisting of a single table (scan only)."""
    return build_query(cardinalities=[1_234], edges=[], name="single")


@pytest.fixture
def chain_model(chain_query_4):
    """Default three-metric cost model for the 4-table chain query."""
    return MultiObjectiveCostModel(chain_query_4, metrics=("time", "buffer", "disk"))


@pytest.fixture
def star_model(star_query_5):
    """Default three-metric cost model for the 5-table star query."""
    return MultiObjectiveCostModel(star_query_5, metrics=("time", "buffer", "disk"))


@pytest.fixture
def cycle_model(cycle_query_6):
    """Default three-metric cost model for the 6-table cycle query."""
    return MultiObjectiveCostModel(cycle_query_6, metrics=("time", "buffer", "disk"))


@pytest.fixture
def two_metric_model(chain_query_4):
    """Two-metric (time, buffer) cost model for the chain query."""
    return MultiObjectiveCostModel(chain_query_4, metrics=("time", "buffer"))


@pytest.fixture
def minimal_model(chain_query_4):
    """Cost model with a single scan and join operator (single-metric search space)."""
    return MultiObjectiveCostModel(
        chain_query_4, metrics=("time",), library=OperatorLibrary.minimal()
    )
