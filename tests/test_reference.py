"""Tests for repro.bench.reference (reference frontiers)."""

import pytest

from repro.bench.reference import dp_reference_frontier, union_reference_frontier
from repro.cost.model import MultiObjectiveCostModel
from repro.pareto.dominance import dominates


class TestUnionReference:
    def test_union_is_pareto_filtered(self):
        frontier_a = [(1.0, 5.0), (4.0, 4.0)]
        frontier_b = [(5.0, 1.0), (2.0, 2.0)]
        reference = union_reference_frontier([frontier_a, frontier_b])
        assert (4.0, 4.0) not in reference
        assert set(reference) == {(1.0, 5.0), (5.0, 1.0), (2.0, 2.0)}

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            union_reference_frontier([[], []])

    def test_single_algorithm_union(self):
        reference = union_reference_frontier([[(1.0, 1.0)]])
        assert reference == [(1.0, 1.0)]

    def test_union_dominates_every_contributor(self):
        frontiers = [[(3.0, 1.0), (9.0, 9.0)], [(1.0, 3.0)]]
        reference = union_reference_frontier(frontiers)
        for frontier in frontiers:
            for cost in frontier:
                assert any(dominates(ref, cost) for ref in reference)


class TestDPReference:
    def test_small_query_reference_non_empty(self, two_metric_model):
        reference = dp_reference_frontier(two_metric_model, alpha=1.01)
        assert reference
        # Mutually non-dominated.
        for first in reference:
            for second in reference:
                if first != second:
                    assert not dominates(first, second) or not dominates(second, first)

    def test_reference_costs_have_right_arity(self, chain_model):
        reference = dp_reference_frontier(chain_model, alpha=1.5, max_steps=100_000)
        assert reference
        assert all(len(cost) == chain_model.num_metrics for cost in reference)

    def test_budget_can_prevent_completion(self, rng):
        from repro.query.generator import QueryGenerator
        from repro.query.join_graph import GraphShape

        query = QueryGenerator(rng=rng).generate(25, GraphShape.CHAIN)
        model = MultiObjectiveCostModel(query, metrics=("time", "buffer"))
        reference = dp_reference_frontier(model, alpha=2.0, max_steps=3)
        assert reference == []
