"""Setuptools entry point.

The declarative configuration lives in ``pyproject.toml``; this file exists
so that editable installs work in environments without the ``wheel`` package
(``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
