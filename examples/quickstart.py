#!/usr/bin/env python3
"""Quickstart: optimize a randomly generated query with RMQ.

Generates a 20-table chain query, runs the RMQ optimizer for a fixed number
of iterations, and prints the resulting Pareto-optimal cost tradeoffs together
with the plan realizing the fastest tradeoff.

Run with::

    python examples/quickstart.py [num_tables] [iterations]
"""

from __future__ import annotations

import random
import sys

from repro import (
    GraphShape,
    MultiObjectiveCostModel,
    QueryGenerator,
    RMQOptimizer,
    explain_plan,
    plan_signature,
)


def main(num_tables: int = 20, iterations: int = 30, seed: int = 42) -> None:
    rng = random.Random(seed)

    # 1. Generate a random query (chain-shaped join graph, Steinbrunn-style
    #    table cardinalities and selectivities).
    query = QueryGenerator(rng=rng).generate(num_tables, GraphShape.CHAIN)
    print(f"Query: {query.name} joining {query.num_tables} tables")

    # 2. Attach a multi-objective cost model: execution time, buffer space
    #    and disk footprint — the three metrics of the paper's evaluation.
    cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))

    # 3. Run the randomized multi-objective optimizer (Algorithm 1).
    optimizer = RMQOptimizer(cost_model, rng=rng)
    pareto_plans = optimizer.run(max_steps=iterations)

    # 4. Inspect the approximate Pareto frontier.
    print(f"\nAfter {optimizer.iteration} iterations RMQ found "
          f"{len(pareto_plans)} Pareto-optimal cost tradeoffs:")
    header = "  ".join(f"{name:>12}" for name in cost_model.metric_names)
    print(f"    {header}    plan")
    for plan in sorted(pareto_plans, key=lambda p: p.cost[0]):
        values = "  ".join(f"{value:12.1f}" for value in plan.cost)
        print(f"    {values}    {plan_signature(plan)}")

    fastest = min(pareto_plans, key=lambda p: p.cost[0])
    print("\nOperator tree of the fastest plan:")
    print(explain_plan(fastest, metric_names=cost_model.metric_names))

    lengths = optimizer.climb_path_lengths
    print(f"\nHill-climbing path lengths per iteration: "
          f"min={min(lengths)} median={sorted(lengths)[len(lengths) // 2]} max={max(lengths)}")
    print(f"Plan cache: {len(optimizer.plan_cache)} intermediate results, "
          f"{optimizer.plan_cache.total_plans} cached partial plans")


if __name__ == "__main__":
    tables = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    main(tables, iters)
