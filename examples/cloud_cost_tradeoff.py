#!/usr/bin/env python3
"""Cloud scenario: trading execution time against monetary cost.

The paper motivates multi-objective query optimization with cloud computing:
"users might be able to reduce query execution time when willing to pay more
money for renting additional resources from the cloud provider".  This
example builds a small analytics schema, attaches an operator library with
parallelism variants (more workers = faster but more expensive), and shows
the time/money Pareto frontier that RMQ discovers, together with how a user
preference (a monetary budget) selects a plan from the frontier.

Run with::

    python examples/cloud_cost_tradeoff.py [budget]
"""

from __future__ import annotations

import random
import sys

from repro import (
    Catalog,
    MultiObjectiveCostModel,
    OperatorLibrary,
    RMQOptimizer,
    plan_signature,
)
from repro.core.frontier import AlphaSchedule


def build_sales_query():
    """A star-schema style analytics query over a small warehouse catalog."""
    catalog = Catalog()
    catalog.add_table("sales", 2_000_000, row_width=60)
    catalog.add_table("customers", 150_000, row_width=120)
    catalog.add_table("products", 30_000, row_width=90)
    catalog.add_table("stores", 1_000, row_width=80)
    catalog.add_table("dates", 3_650, row_width=40)
    return catalog.build_query(
        ["sales", "customers", "products", "stores", "dates"],
        [
            ("sales", "customers", 1.0 / 150_000),
            ("sales", "products", 1.0 / 30_000),
            ("sales", "stores", 1.0 / 1_000),
            ("sales", "dates", 1.0 / 3_650),
        ],
        name="warehouse_star",
    )


def main(budget: float = 250_000.0, iterations: int = 15, seed: int = 7) -> None:
    query = build_sales_query()
    library = OperatorLibrary.cloud(parallelism_levels=(1, 4, 16))
    cost_model = MultiObjectiveCostModel(
        query, metrics=("time", "monetary"), library=library
    )

    optimizer = RMQOptimizer(
        cost_model,
        rng=random.Random(seed),
        # A fine (1.05) approximation factor keeps the frontier detailed while
        # bounding the number of partial plans kept per intermediate result.
        schedule=AlphaSchedule.constant(1.05),
    )
    frontier = optimizer.run(max_steps=iterations)

    print(f"Query {query.name}: {query.num_tables} tables, cloud operator library "
          f"with parallelism levels 1/4/16")
    print(f"\nPareto frontier (execution time vs. monetary cost), "
          f"{len(frontier)} tradeoffs:")
    print(f"    {'time':>12}  {'money':>12}    plan")
    for plan in sorted(frontier, key=lambda p: p.cost[0]):
        print(f"    {plan.cost[0]:12.1f}  {plan.cost[1]:12.1f}    {plan_signature(plan)}")

    # Select the fastest plan that fits the monetary budget — this is the
    # "cost bounds" preference model of the paper's predecessor work.
    affordable = [plan for plan in frontier if plan.cost[1] <= budget]
    print(f"\nUser preference: monetary budget = {budget:g}")
    if affordable:
        choice = min(affordable, key=lambda p: p.cost[0])
        print(f"Selected plan: {plan_signature(choice)}")
        print(f"  estimated time  = {choice.cost[0]:.1f}")
        print(f"  estimated money = {choice.cost[1]:.1f}")
    else:
        cheapest = min(frontier, key=lambda p: p.cost[1])
        print("No plan fits the budget; the cheapest available plan costs "
              f"{cheapest.cost[1]:.1f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 250_000.0)
