#!/usr/bin/env python3
"""Approximate query processing: trading result precision against time.

The paper's second motivating scenario: "approximate query processing where
users care about execution time and result precision".  Sampling scan
operators read only a fraction of each table; that lowers execution time but
incurs precision loss, which the paper treats as a cost metric.  This example
shows the precision/time frontier RMQ finds and how different interactive
"impatience" levels map to different sampling choices.

Run with::

    python examples/approximate_query_processing.py
"""

from __future__ import annotations

import random

from repro import (
    GraphShape,
    MultiObjectiveCostModel,
    OperatorLibrary,
    QueryGenerator,
    RMQOptimizer,
    plan_signature,
)
from repro.core.frontier import AlphaSchedule


def main(iterations: int = 40, seed: int = 11) -> None:
    rng = random.Random(seed)
    query = QueryGenerator(rng=rng).generate(6, GraphShape.STAR, name="dashboard_query")
    library = OperatorLibrary.sampling(sampling_rates=(1.0, 0.1, 0.01))
    cost_model = MultiObjectiveCostModel(
        query, metrics=("time", "precision_loss"), library=library
    )

    optimizer = RMQOptimizer(
        cost_model, rng=rng, schedule=AlphaSchedule.constant(1.0)
    )
    frontier = optimizer.run(max_steps=iterations)

    print(f"Query {query.name}: {query.num_tables} tables, sampling rates 100%/10%/1%")
    print(f"\nPareto frontier (execution time vs. precision loss), "
          f"{len(frontier)} tradeoffs:")
    print(f"    {'time':>12}  {'precision loss':>15}    plan")
    for plan in sorted(frontier, key=lambda p: p.cost[0]):
        print(
            f"    {plan.cost[0]:12.1f}  {plan.cost[1]:15.3f}    {plan_signature(plan)}"
        )

    print("\nPlan selection for different precision requirements:")
    for max_loss, label in [(0.0, "exact result"), (1.0, "rough preview"), (3.0, "instant sketch")]:
        eligible = [plan for plan in frontier if plan.cost[1] <= max_loss + 1e-9]
        if not eligible:
            continue
        choice = min(eligible, key=lambda p: p.cost[0])
        print(
            f"  {label:<15} (loss ≤ {max_loss:g}): time {choice.cost[0]:10.1f}, "
            f"loss {choice.cost[1]:.3f}"
        )


if __name__ == "__main__":
    main()
