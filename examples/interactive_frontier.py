#!/usr/bin/env python3
"""Interactive frontier exploration (text rendering).

Multi-objective query optimization can be an interactive process: the
optimizer presents the available cost tradeoffs and the user picks one
(Section 4.1 / the cited incremental-anytime work).  This example runs RMQ in
short bursts, after each burst re-rendering the current two-metric Pareto
frontier as an ASCII scatter plot, illustrating the anytime refinement that
the α schedule produces.

It also demonstrates **frontier-store selection**: the frontier snapshot of
every burst is offered to an archive —
a :class:`repro.pareto.ParetoFrontier` backed by a chosen store (``"auto"``,
``"flat"``, ``"sorted"`` or ``"ndtree"`` — see ``docs/API.md``) — which
keeps the non-dominated union of all snapshots.  (Early tradeoffs later
bursts improve on are evicted; vectors reappearing in several snapshots are
offered, and counted, once per burst.)  The archive's contents are
identical for every store; only query time differs.

Run with::

    python examples/interactive_frontier.py [store]

Expected output (checked by ``tests/test_examples.py``): four bursts, each
printing an ``After N iterations ... tradeoffs available:`` header above the
scatter plot, followed by a closing summary line such as::

    candidate archive: 12 non-dominated of 45 offered (store: sorted, policy: sorted)
"""

from __future__ import annotations

import random
import sys

from repro import GraphShape, MultiObjectiveCostModel, QueryGenerator, RMQOptimizer
from repro.core.frontier import AlphaSchedule
from repro.pareto import ParetoFrontier


def render_frontier(costs, width: int = 60, height: int = 16) -> str:
    """Render (x, y) cost points as an ASCII scatter plot (log-free, scaled)."""
    if not costs:
        return "(no plans yet)"
    xs = [c[0] for c in costs]
    ys = [c[1] for c in costs]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in costs:
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"
    lines = ["  +" + "-" * width + "+"]
    for row in grid:
        lines.append("  |" + "".join(row) + "|")
    lines.append("  +" + "-" * width + "+")
    lines.append(f"   x = time [{x_min:.0f} .. {x_max:.0f}]   "
                 f"y = buffer [{y_min:.0f} .. {y_max:.0f}]")
    return "\n".join(lines)


def main(seed: int = 17, store: str = "auto") -> None:
    rng = random.Random(seed)
    query = QueryGenerator(rng=rng).generate(15, GraphShape.CHAIN)
    cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer"))
    optimizer = RMQOptimizer(cost_model, rng=rng, schedule=AlphaSchedule.compressed())
    # Non-dominated union of all burst snapshots, kept by the selected
    # frontier store.  Contents are identical for every store; "auto"
    # upgrades from the flat scan to an index only if the archive grows
    # large.
    archive: ParetoFrontier = ParetoFrontier(store=store)
    offered = 0

    print(f"Interactive optimization of a {query.num_tables}-table chain query.")
    for burst in range(1, 5):
        optimizer.run(max_steps=8)
        frontier = optimizer.frontier()
        costs = sorted(plan.cost for plan in frontier)
        offered += len(costs)
        archive.insert_all(costs)
        print(f"\nAfter {optimizer.iteration} iterations "
              f"(approximation factor α ≈ {optimizer.current_alpha:.2f}), "
              f"{len(frontier)} tradeoffs available:")
        print(render_frontier(costs))
    print(f"\ncandidate archive: {len(archive)} non-dominated of {offered} offered "
          f"(store: {archive.store_name}, policy: {store})")
    print("In an interactive deployment the user would now pick a point; "
          "optimization stops as soon as a plan is selected.")


if __name__ == "__main__":
    main(store=sys.argv[1] if len(sys.argv) > 1 else "auto")
