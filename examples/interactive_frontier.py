#!/usr/bin/env python3
"""Interactive frontier exploration (text rendering).

Multi-objective query optimization can be an interactive process: the
optimizer presents the available cost tradeoffs and the user picks one
(Section 4.1 / the cited incremental-anytime work).  This example runs RMQ in
short bursts, after each burst re-rendering the current two-metric Pareto
frontier as an ASCII scatter plot, illustrating the anytime refinement that
the α schedule produces.

Run with::

    python examples/interactive_frontier.py
"""

from __future__ import annotations

import random

from repro import GraphShape, MultiObjectiveCostModel, QueryGenerator, RMQOptimizer
from repro.core.frontier import AlphaSchedule


def render_frontier(costs, width: int = 60, height: int = 16) -> str:
    """Render (x, y) cost points as an ASCII scatter plot (log-free, scaled)."""
    if not costs:
        return "(no plans yet)"
    xs = [c[0] for c in costs]
    ys = [c[1] for c in costs]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in costs:
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"
    lines = ["  +" + "-" * width + "+"]
    for row in grid:
        lines.append("  |" + "".join(row) + "|")
    lines.append("  +" + "-" * width + "+")
    lines.append(f"   x = time [{x_min:.0f} .. {x_max:.0f}]   "
                 f"y = buffer [{y_min:.0f} .. {y_max:.0f}]")
    return "\n".join(lines)


def main(seed: int = 17) -> None:
    rng = random.Random(seed)
    query = QueryGenerator(rng=rng).generate(15, GraphShape.CHAIN)
    cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer"))
    optimizer = RMQOptimizer(cost_model, rng=rng, schedule=AlphaSchedule.compressed())

    print(f"Interactive optimization of a {query.num_tables}-table chain query.")
    for burst in range(1, 5):
        optimizer.run(max_steps=8)
        frontier = optimizer.frontier()
        costs = sorted(plan.cost for plan in frontier)
        print(f"\nAfter {optimizer.iteration} iterations "
              f"(approximation factor α ≈ {optimizer.current_alpha:.2f}), "
              f"{len(frontier)} tradeoffs available:")
        print(render_frontier(costs))
    print("\nIn an interactive deployment the user would now pick a point; "
          "optimization stops as soon as a plan is selected.")


if __name__ == "__main__":
    main()
