#!/usr/bin/env python3
"""Compare RMQ against the paper's baselines on a single query.

Runs every randomized algorithm of the paper's evaluation (plus the DP
approximation scheme) on the same random query under the same wall-clock
budget, builds the union reference frontier, and prints each algorithm's
approximation error — a single-cell version of Figures 1 and 2.

Run with::

    python examples/compare_algorithms.py [num_tables] [seconds_per_algorithm]
"""

from __future__ import annotations

import sys

from repro import GraphShape, MultiObjectiveCostModel, QueryGenerator
from repro.baselines import PAPER_ALGORITHMS
from repro.bench.anytime import evaluate_anytime
from repro.bench.reference import union_reference_frontier
from repro.bench.runner import build_optimizer
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.pareto.epsilon import approximation_error
from repro.utils.rng import derive_rng


def main(num_tables: int = 12, budget: float = 1.0, seed: int = 3) -> None:
    query = QueryGenerator(rng=derive_rng(seed, "query")).generate(
        num_tables, GraphShape.CYCLE
    )
    cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
    checkpoints = tuple(budget * f for f in (0.25, 0.5, 1.0))

    # A scenario spec is only needed to carry algorithm-level options
    # (NSGA-II population size, RMQ schedule compression) into the builder.
    spec = ScenarioSpec(
        name="compare_algorithms",
        description="single-query comparison",
        graph_shapes=(GraphShape.CYCLE,),
        table_counts=(num_tables,),
        num_metrics=3,
        algorithms=PAPER_ALGORITHMS,
        time_budget=budget,
        checkpoints=checkpoints,
        nsga_population=50,
        scale=ScenarioScale.DEFAULT,
        seed=seed,
    )

    print(f"Query: {query.num_tables}-table cycle; budget {budget:g}s per algorithm\n")
    results = {}
    for name in PAPER_ALGORITHMS:
        optimizer = build_optimizer(name, cost_model, derive_rng(seed, name), spec)
        records = evaluate_anytime(optimizer, checkpoints, budget)
        results[name] = records
        print(f"  {name:<13} finished: steps={optimizer.statistics.steps:>5}  "
              f"plans in frontier={records[-1].frontier_size}")

    reference = union_reference_frontier(
        [records[-1].frontier_costs for records in results.values()]
    )
    print(f"\nReference frontier size (union of all algorithms): {len(reference)}")
    print(f"\nApproximation error (lower is better, 1.0 = covers the reference):")
    header = "  ".join(f"t={t:g}s" for t in checkpoints)
    print(f"  {'algorithm':<13} {header}")
    for name, records in results.items():
        errors = []
        for record in records:
            error = approximation_error(record.frontier_costs, reference)
            errors.append("inf" if error == float("inf") else f"{error:.3g}")
        print(f"  {name:<13} " + "  ".join(f"{e:>8}" for e in errors))


if __name__ == "__main__":
    tables = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    seconds = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    main(tables, seconds)
