#!/usr/bin/env python3
"""Scaling demonstration: optimizing queries with up to 100 tables.

The paper's headline capability is optimizing queries "joining up to 100
tables considering an unconstrained bushy plan space" — far beyond what the
exponential DP-based multi-objective optimizers can handle.  This example
runs RMQ on progressively larger star queries under a fixed per-query time
budget and reports the frontier size, the number of iterations completed and
the median hill-climbing path length (the statistic of Figure 3).

Run with::

    python examples/large_query_scaling.py [seconds_per_query]
"""

from __future__ import annotations

import statistics
import sys
import time

from repro import GraphShape, MultiObjectiveCostModel, QueryGenerator, RMQOptimizer
from repro.core.frontier import AlphaSchedule
from repro.utils.rng import derive_rng


def main(budget: float = 2.0, seed: int = 5) -> None:
    print(f"RMQ on star queries, {budget:g}s per query, metrics = time/buffer/disk\n")
    print(f"{'tables':>8} {'iterations':>12} {'frontier':>10} "
          f"{'median path':>12} {'cache plans':>12} {'seconds':>9}")
    for num_tables in (10, 25, 50, 75, 100):
        query = QueryGenerator(rng=derive_rng(seed, "query", num_tables)).generate(
            num_tables, GraphShape.STAR
        )
        cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
        optimizer = RMQOptimizer(
            cost_model,
            rng=derive_rng(seed, "rmq", num_tables),
            schedule=AlphaSchedule.compressed(),
        )
        started = time.perf_counter()
        optimizer.run(time_budget=budget)
        elapsed = time.perf_counter() - started
        paths = optimizer.climb_path_lengths or [0]
        print(
            f"{num_tables:>8} {optimizer.iteration:>12} {len(optimizer.frontier()):>10} "
            f"{statistics.median(paths):>12.1f} {optimizer.plan_cache.total_plans:>12} "
            f"{elapsed:>9.2f}"
        )

    print("\nEvery row produced at least one complete plan: RMQ degrades gracefully "
          "with query size instead of failing like exhaustive approaches.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2.0)
