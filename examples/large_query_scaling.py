#!/usr/bin/env python3
"""Scaling demonstration: optimizing queries with up to 100 tables.

The paper's headline capability is optimizing queries "joining up to 100
tables considering an unconstrained bushy plan space" — far beyond what the
exponential DP-based multi-objective optimizers can handle.  This example
runs RMQ on progressively larger star queries under a fixed per-query time
budget and reports the frontier size, the number of iterations completed and
the median hill-climbing path length (the statistic of Figure 3).

It then demonstrates **frontier-store selection** at scale: the cost vectors
of many random plans for the largest query are Pareto-filtered once per
store (``flat``, ``sorted``, ``ndtree``, ``auto`` — see ``docs/API.md``).
All stores keep exactly the same frontier; the indexed tiers only answer
the dominance queries faster once frontiers get large.

Finally it runs the **vectorized DP reference** (``ArenaDPOptimizer``, see
``docs/ARCHITECTURE.md``) to completion at table counts where the
object-engine DP was effectively unreachable: the arena engine pushes
millions of candidate plans through whole-level batch kernels, so coarse
DP(α) guarantees become available as references for mid-size queries
instead of stopping at figure-grid sizes.

Run with::

    python examples/large_query_scaling.py [seconds_per_query]

Expected output (checked by ``tests/test_examples.py``): one scaling-table
row per query size, then a ``Frontier-store comparison`` section with one
row per store ending in a confirmation line::

    all stores kept identical frontiers (N plans)

then a ``DP reference scaling`` section with one row per DP table count.
"""

from __future__ import annotations

import statistics
import sys
import time

from repro import GraphShape, MultiObjectiveCostModel, QueryGenerator, RMQOptimizer
from repro.core.frontier import AlphaSchedule
from repro.core.random_plans import RandomPlanGenerator
from repro.pareto import pareto_filter
from repro.utils.rng import derive_rng


def compare_frontier_stores(
    cost_model: MultiObjectiveCostModel, seed: int, num_plans: int = 2000
) -> None:
    """Pareto-filter many random-plan cost vectors once per frontier store."""
    generator = RandomPlanGenerator(cost_model, derive_rng(seed, "store-demo"))
    costs = []
    skipped = 0
    for _ in range(num_plans):
        try:
            costs.append(generator.random_bushy_plan().cost)
        except OverflowError:
            # A purely random bushy plan over ~100 tables can push an
            # intermediate cardinality past float range; the optimizer never
            # keeps such plans, so the demo just skips them.
            skipped += 1
    if skipped:
        print(f"  (skipped {skipped} random plans whose cost overflowed)")
    if not costs:
        print("  (every random plan overflowed the cost model; nothing to filter)")
        return
    print(f"\nFrontier-store comparison: Pareto-filtering {len(costs)} random "
          f"{cost_model.query.num_tables}-table plans "
          f"({len(costs[0])} metrics):")
    frontiers = {}
    for store in ("flat", "sorted", "ndtree", "auto"):
        started = time.perf_counter()
        frontiers[store] = pareto_filter(costs, store=store)
        elapsed = time.perf_counter() - started
        print(f"  {store:>6}: {elapsed * 1e3:8.1f} ms "
              f"-> frontier of {len(frontiers[store])}")
    reference = frontiers["flat"]
    assert all(kept == reference for kept in frontiers.values()), (
        "frontier stores diverged"
    )
    print(f"  all stores kept identical frontiers ({len(reference)} plans)")
    print("  (random plan costs collapse onto a small frontier, so 'auto' stays "
          "on the flat fast path here; benchmarks/bench_micro_pareto.py shows "
          "the large-frontier regime where the indexed tiers win)")


def dp_reference_scaling(seed: int, dp_tables, dp_alpha: float) -> None:
    """Run the arena DP(α) scheme to completion at each table count."""
    from repro.baselines.dp import make_dp_optimizer

    first = make_dp_optimizer(
        MultiObjectiveCostModel(
            QueryGenerator(rng=derive_rng(seed, "dp-query", dp_tables[0])).generate(
                dp_tables[0], GraphShape.STAR
            ),
            metrics=("time", "buffer", "disk"),
        ),
        alpha=dp_alpha,
    )
    print(f"\nDP reference scaling: {first.name} on the arena engine "
          f"(full subset lattice, guaranteed approximation):")
    print(f"{'tables':>8} {'plans built':>12} {'frontier':>10} {'seconds':>9}")
    for num_tables in dp_tables:
        query = QueryGenerator(rng=derive_rng(seed, "dp-query", num_tables)).generate(
            num_tables, GraphShape.STAR
        )
        cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
        optimizer = make_dp_optimizer(cost_model, alpha=dp_alpha, tasks_per_step=2000)
        started = time.perf_counter()
        while not optimizer.finished:
            optimizer.step()
        elapsed = time.perf_counter() - started
        print(f"{num_tables:>8} {optimizer.statistics.plans_built:>12} "
              f"{len(optimizer.frontier()):>10} {elapsed:>9.2f}")
    print("  (the object-engine DP builds one Python object per candidate and is "
          "~6x slower on this path — see BENCH_dp.json — putting the larger row "
          "counts out of practical reach)")


def main(
    budget: float = 2.0,
    seed: int = 5,
    store_demo_plans: int = 2000,
    dp_tables=(8, 10),
    dp_alpha: float = float("inf"),
) -> None:
    print(f"RMQ on star queries, {budget:g}s per query, metrics = time/buffer/disk\n")
    print(f"{'tables':>8} {'iterations':>12} {'frontier':>10} "
          f"{'median path':>12} {'cache plans':>12} {'seconds':>9}")
    cost_model = None
    for num_tables in (10, 25, 50, 75, 100):
        query = QueryGenerator(rng=derive_rng(seed, "query", num_tables)).generate(
            num_tables, GraphShape.STAR
        )
        cost_model = MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))
        optimizer = RMQOptimizer(
            cost_model,
            rng=derive_rng(seed, "rmq", num_tables),
            schedule=AlphaSchedule.compressed(),
        )
        started = time.perf_counter()
        optimizer.run(time_budget=budget)
        elapsed = time.perf_counter() - started
        paths = optimizer.climb_path_lengths or [0]
        print(
            f"{num_tables:>8} {optimizer.iteration:>12} {len(optimizer.frontier()):>10} "
            f"{statistics.median(paths):>12.1f} {optimizer.plan_cache.total_plans:>12} "
            f"{elapsed:>9.2f}"
        )

    print("\nEvery row produced at least one complete plan: RMQ degrades gracefully "
          "with query size instead of failing like exhaustive approaches.")

    if cost_model is not None and store_demo_plans > 0:
        compare_frontier_stores(cost_model, seed, num_plans=store_demo_plans)

    if dp_tables:
        dp_reference_scaling(seed, tuple(dp_tables), dp_alpha)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2.0)
