"""Micro-benchmark M3: observability overhead (``repro.obs``).

Measures what the tracing/metrics layer costs the DP micro workload — the
hottest instrumented path (per-level spans, per-chunk kernel spans,
per-batch frontier counters) — and what the *disabled* fast path costs
everyone else:

* ``null_span_ns``     — nanoseconds per ``with tracer.span(...)`` block
  when tracing is disabled (the identity-sentinel fast path every hot
  call site pays unconditionally),
* ``counter_add_ns``   — nanoseconds per ``Metrics.add`` call (the
  unconditional per-batch counter cost),
* ``overhead_enabled`` — relative slowdown of a full 7-table / 3-metric
  DP(2.0) run with tracing enabled vs. disabled, interleaved A/B runs
  compared best-of (interleaving cancels machine drift, which otherwise
  dwarfs the effect being measured).

Acceptance bars: the traced run must be bit-identical to the untraced run
(frontier fingerprints), the disabled span must stay under
``NULL_SPAN_BUDGET_NS``, and the enabled overhead must stay under
``OVERHEAD_HARD_LIMIT`` (a noise-tolerant CI bar; the design target
recorded in the JSON is ``OVERHEAD_TARGET`` = 3%).

Results are written to ``BENCH_obs.json`` in the repository root.  Run as
a script (``python benchmarks/bench_obs_overhead.py``) or via pytest.
"""

from __future__ import annotations

import json
import os
import random
import time
import timeit
from typing import Dict

import repro.obs as obs
from repro.baselines.dp import ArenaDPOptimizer
from repro.cost.model import MultiObjectiveCostModel
from repro.query.generator import QueryGenerator
from repro.query.join_graph import GraphShape
from repro.regress import frontier_fingerprint

#: Repository root (this file lives in benchmarks/).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OBS_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_obs.json")

NUM_TABLES = 7
NUM_METRICS = 3
ALPHA = 2.0
SEED = 7
REPEATS = 7

#: Design target for the enabled-tracing slowdown on the DP workload.
OVERHEAD_TARGET = 0.03
#: Hard CI bar — generous because shared runners are noisy; the recorded
#: number is what matters for trend-watching.
OVERHEAD_HARD_LIMIT = 0.15
#: Budget for one disabled ``with tracer.span(...)`` block.
NULL_SPAN_BUDGET_NS = 2_000.0


def _model() -> MultiObjectiveCostModel:
    query = QueryGenerator(rng=random.Random(SEED)).generate(
        NUM_TABLES, GraphShape.CHAIN
    )
    return MultiObjectiveCostModel(
        query, metrics=("time", "buffer", "disk")[:NUM_METRICS]
    )


def _run_dp() -> str:
    optimizer = ArenaDPOptimizer(_model(), alpha=ALPHA)
    optimizer.run(max_steps=10_000_000)
    return frontier_fingerprint(optimizer.frontier())


def _disabled_path_costs() -> Dict[str, float]:
    """Per-call cost of the two unconditional hot-path hooks."""
    assert not obs.tracing_enabled()
    tracer = obs.get_tracer()
    iterations = 200_000

    def span_block() -> None:
        with tracer.span("bench"):
            pass

    span_ns = timeit.timeit(span_block, number=iterations) / iterations * 1e9
    metrics = obs.global_metrics()
    add_ns = (
        timeit.timeit(lambda: metrics.add("bench.counter"), number=iterations)
        / iterations
        * 1e9
    )
    return {"null_span_ns": span_ns, "counter_add_ns": add_ns}


def run_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Measure obs overhead on the DP micro workload; return + persist."""
    obs.disable_tracing()
    obs.reset_global_metrics()
    fast_path = _disabled_path_costs()

    _run_dp()  # warm caches and allocator before timing anything
    fingerprint_off = _run_dp()
    obs.enable_tracing()
    fingerprint_on = _run_dp()
    events_per_run = len(obs.get_tracer().events())
    obs.disable_tracing()
    assert fingerprint_on == fingerprint_off, (
        "tracing perturbed the DP result: "
        f"{fingerprint_on} != {fingerprint_off}"
    )

    # Interleaved A/B timing: alternate disabled/enabled runs so slow
    # drift (thermal, other tenants) hits both sides equally, then
    # compare best-of.
    disabled_times = []
    enabled_times = []
    for _ in range(REPEATS):
        obs.disable_tracing()
        start = time.perf_counter()
        _run_dp()
        disabled_times.append(time.perf_counter() - start)
        obs.enable_tracing()  # fresh tracer: no event-list carry-over
        start = time.perf_counter()
        _run_dp()
        enabled_times.append(time.perf_counter() - start)
    obs.disable_tracing()
    obs.reset_global_metrics()

    best_disabled = min(disabled_times)
    best_enabled = min(enabled_times)
    overhead_enabled = best_enabled / best_disabled - 1.0
    # The disabled run *is* the baseline: its only obs cost is the
    # fast-path hooks measured above, projected here per run.
    projected_disabled_cost = (
        events_per_run * fast_path["null_span_ns"] * 1e-9 / best_disabled
    )

    results: Dict[str, object] = {
        "alpha": ALPHA,
        "num_tables": NUM_TABLES,
        "num_metrics": NUM_METRICS,
        "seed": SEED,
        "repeats": REPEATS,
        "null_span_ns": fast_path["null_span_ns"],
        "counter_add_ns": fast_path["counter_add_ns"],
        "events_per_run": events_per_run,
        "seconds_disabled": best_disabled,
        "seconds_enabled": best_enabled,
        "overhead_enabled": overhead_enabled,
        "overhead_disabled_projected": projected_disabled_cost,
        "overhead_target": OVERHEAD_TARGET,
        "overhead_hard_limit": OVERHEAD_HARD_LIMIT,
        "fingerprint": fingerprint_off,
    }
    if write_json:
        with open(OBS_RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return results


def test_obs_overhead() -> None:
    """Pytest entry point: enforce the overhead acceptance bars."""
    results = run_benchmark()
    assert results["null_span_ns"] < NULL_SPAN_BUDGET_NS, results
    assert results["overhead_enabled"] < OVERHEAD_HARD_LIMIT, results
    # The disabled path is a handful of sentinel no-ops per run — its
    # projected share of the runtime should be indistinguishable from 0.
    assert results["overhead_disabled_projected"] < 0.001, results


def main() -> None:
    results = run_benchmark()
    print(f"null span           {results['null_span_ns']:8.0f} ns/call")
    print(f"counter add         {results['counter_add_ns']:8.0f} ns/call")
    print(f"DP run (disabled)   {results['seconds_disabled']:8.3f} s")
    print(f"DP run (enabled)    {results['seconds_enabled']:8.3f} s")
    print(
        f"enabled overhead    {results['overhead_enabled']:8.2%}"
        f"  (target {OVERHEAD_TARGET:.0%}, hard limit {OVERHEAD_HARD_LIMIT:.0%})"
    )
    print(f"disabled overhead   {results['overhead_disabled_projected']:8.4%} (projected)")
    print(f"results written to {OBS_RESULT_PATH}")


if __name__ == "__main__":
    main()
