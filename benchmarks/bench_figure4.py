"""Figure 4: two cost metrics with Bruno's MinMax join selectivities.

Appendix experiment verifying that the Figure 1 results generalize to a
different selectivity-generation method (each join output cardinality lies
between its input cardinalities).
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure4_spec
from repro.query.generator import SelectivityModel


def test_figure4(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure4_spec, scale)
    assert result.spec.selectivity_model is SelectivityModel.MINMAX
    assert result.cells
