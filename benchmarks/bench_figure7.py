"""Figure 7: long-budget comparison, three cost metrics, error capped at 1e10.

Same as Figure 6 with three cost metrics; the paper reports that RMQ's
advantage over the other randomized algorithms grows with the metric count.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure7_spec


def test_figure7(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure7_spec, scale)
    assert result.spec.num_metrics == 3
    assert result.spec.error_cap == 1e10
    assert result.cells
