"""Micro-benchmarks M1 (DESIGN.md): complexity sanity checks for ParetoClimb.

* ``test_pareto_step_scaling`` measures one ParetoStep on 10- vs 40-table
  plans; per Lemma 2 the cost grows roughly linearly in the number of plan
  nodes, so the 40-table step must stay well below the quadratic ratio.
* ``test_climb_path_length_growth`` re-checks the Theorem 2 trend: the
  expected path length grows slowly with the query size.
* ``test_random_plan_generation`` benchmarks the linear-time random plan
  generator (Lemma 1).
"""

import random
import statistics
import time

from repro.core.pareto_climb import ParetoClimber
from repro.core.random_plans import RandomPlanGenerator
from repro.cost.model import MultiObjectiveCostModel
from repro.query.generator import QueryGenerator
from repro.query.join_graph import GraphShape


def _model(num_tables, seed=1):
    query = QueryGenerator(rng=random.Random(seed)).generate(num_tables, GraphShape.CHAIN)
    return MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))


def _time_step(num_tables, repetitions=5):
    model = _model(num_tables)
    generator = RandomPlanGenerator(model, random.Random(2))
    climber = ParetoClimber(model)
    plans = [generator.random_bushy_plan() for _ in range(repetitions)]
    started = time.perf_counter()
    for plan in plans:
        climber.pareto_step(plan)
    return (time.perf_counter() - started) / repetitions


def test_pareto_step_scaling(benchmark):
    small = _time_step(10)
    large = benchmark.pedantic(_time_step, args=(40,), iterations=1, rounds=1)
    ratio = large / max(small, 1e-9)
    print(f"\nParetoStep mean time: 10 tables {small * 1e3:.2f} ms, "
          f"40 tables {large * 1e3:.2f} ms, ratio {ratio:.1f} (tables ratio 4.0)")
    # Linear-ish scaling: allow a generous constant over the 4x node ratio,
    # but reject clearly quadratic behaviour (16x) and worse.
    assert ratio < 14.0


def test_climb_path_length_growth(benchmark):
    def measure():
        medians = {}
        for num_tables in (5, 15, 30):
            model = _model(num_tables, seed=3)
            generator = RandomPlanGenerator(model, random.Random(4))
            climber = ParetoClimber(model)
            lengths = [climber.climb(generator.random_bushy_plan()).path_length for _ in range(5)]
            medians[num_tables] = statistics.median(lengths)
        return medians

    medians = benchmark.pedantic(measure, iterations=1, rounds=1)
    print(f"\nMedian climb path lengths: {medians}")
    # Path lengths stay small (the paper reports 4-6 for up to 100 tables).
    assert all(value <= 30 for value in medians.values())


def test_random_plan_generation(benchmark):
    model = _model(50, seed=5)
    generator = RandomPlanGenerator(model, random.Random(6))
    plan = benchmark(generator.random_bushy_plan)
    assert plan.rel == model.query.relations
