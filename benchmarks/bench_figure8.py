"""Figure 8: precise approximation error on small queries, two cost metrics.

For 4- and 8-table queries the reference frontier is computed by the DP
approximation scheme with α = 1.01, so the reported error is precise within
a small tolerance.  The paper reports that the randomized algorithms
converge towards α = 1 and that the DP scheme with α = 2 performs very well
on such small queries.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure8_spec


def test_figure8(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure8_spec, scale)
    assert result.spec.reference_algorithm == "DP(1.01)"
    # On small queries every randomized algorithm must produce some result.
    for cell in result.cells:
        if cell.algorithm in ("RMQ", "II", "NSGA-II"):
            assert cell.final_error < float("inf")
