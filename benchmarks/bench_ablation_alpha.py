"""Ablation A2 (DESIGN.md): effect of the approximation-precision schedule.

Compares the decaying α schedule against two fixed extremes: α = 1 (maximum
precision from the first iteration; spends a lot of time per join order) and
α = 25 (permanently coarse; explores many join orders but never refines).
Section 4.3 argues the decaying schedule is the right middle ground.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import ablation_alpha_spec


def test_ablation_alpha(benchmark, scale):
    result = run_figure_benchmark(benchmark, ablation_alpha_spec, scale)
    assert {"RMQ", "RMQ-AlphaFixed1", "RMQ-AlphaFixed25"} <= set(result.spec.algorithms)
    assert result.cells
