"""Figure 3: climb path lengths and number of Pareto plans found by RMQ.

Left panel: median path length from a random plan to the nearest local
Pareto optimum (expected to grow slowly with the number of tables,
Theorem 2).  Right panel: median number of Pareto plans found by RMQ
(expected to grow with the query size).
"""

import os

from conftest import save_report
from repro.bench.scenario import ScenarioScale
from repro.bench.statistics import run_figure3_statistics
from repro.query.join_graph import GraphShape

_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()

if _SCALE == "paper":
    _TABLE_COUNTS = (10, 25, 50, 75, 100)
    _CASES, _ITERATIONS = 20, 20
elif _SCALE == "default":
    _TABLE_COUNTS = (10, 25, 50)
    _CASES, _ITERATIONS = 3, 8
else:
    _TABLE_COUNTS = (6, 10, 15)
    _CASES, _ITERATIONS = 2, 4


def test_figure3(benchmark):
    result = benchmark.pedantic(
        run_figure3_statistics,
        kwargs=dict(
            shapes=(GraphShape.CHAIN, GraphShape.STAR, GraphShape.CYCLE),
            table_counts=_TABLE_COUNTS,
            num_test_cases=_CASES,
            iterations_per_case=_ITERATIONS,
        ),
        iterations=1,
        rounds=1,
    )
    report = result.format_report()
    path = save_report("figure3", ScenarioScale(_SCALE), report)
    print()
    print(report)
    print(f"[report saved to {path}]")
    # Path lengths stay small (the paper reports medians between 4 and 6 for
    # 10-100 tables); Pareto-set sizes are positive everywhere.
    assert all(value < 60 for value in result.median_path_length.values())
    assert all(value >= 1 for value in result.median_pareto_plans.values())
