"""Figure 5: three cost metrics with Bruno's MinMax join selectivities.

Appendix experiment; same grid as Figure 4 with three cost metrics.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure5_spec
from repro.query.generator import SelectivityModel


def test_figure5(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure5_spec, scale)
    assert result.spec.selectivity_model is SelectivityModel.MINMAX
    assert result.spec.num_metrics == 3
    assert result.cells
