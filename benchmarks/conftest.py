"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_figureN.py`` file regenerates one figure of the paper's
evaluation at a configurable scale.  By default the SMOKE scale is used so
that ``pytest benchmarks/ --benchmark-only`` completes in minutes; set the
environment variable ``REPRO_BENCH_SCALE`` to ``default`` or ``paper`` to run
the larger grids (the paper grid takes hours in pure Python).

The text report printed for every figure contains the same series as the
corresponding figure in the paper: one block per (join-graph shape, query
size) cell, one row per algorithm, one column per optimization-time
checkpoint, values being the median approximation error α.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.scenario import ScenarioScale


def bench_scale() -> ScenarioScale:
    """Scale selected via the REPRO_BENCH_SCALE environment variable."""
    value = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    try:
        return ScenarioScale(value)
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of smoke/default/paper, got {value!r}"
        ) from None


@pytest.fixture(scope="session")
def scale() -> ScenarioScale:
    """The scenario scale used by all figure benchmarks in this session."""
    return bench_scale()


#: Directory where every benchmark writes its text report (in addition to
#: printing it), so the series survive pytest's output capturing.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, scale: ScenarioScale, report: str) -> str:
    """Write a figure report to benchmarks/results/ and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}_{scale.value}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    return path


def run_figure_benchmark(benchmark, spec_constructor, scale: ScenarioScale):
    """Run one figure scenario under pytest-benchmark and report its series.

    The report is printed (visible with ``pytest -s`` or on failure) and also
    written to ``benchmarks/results/<figure>_<scale>.txt``.
    """
    from repro.bench.reporting import format_scenario_report, summarize_winners
    from repro.bench.runner import run_scenario

    spec = spec_constructor(scale)
    result = benchmark.pedantic(run_scenario, args=(spec,), iterations=1, rounds=1)
    report = format_scenario_report(result) + "\n" + summarize_winners(result)
    path = save_report(spec.name, scale, report)
    print()
    print(report)
    print(f"[report saved to {path}]")
    return result
