"""Ablation A1 (DESIGN.md): contribution of RMQ's design choices.

Compares full RMQ against variants without the partial-plan cache, without
hill climbing, and restricted to left-deep random plans, plus plain II as the
"no frontier approximation at all" end point.  The plan cache and the
frontier approximation are the two features that distinguish RMQ from II in
the paper's analysis; disabling them should cost approximation quality.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import ablation_rmq_spec


def test_ablation_rmq(benchmark, scale):
    result = run_figure_benchmark(benchmark, ablation_rmq_spec, scale)
    assert {"RMQ", "RMQ-NoCache", "RMQ-NoClimb"} <= set(result.spec.algorithms)
    assert result.cells
