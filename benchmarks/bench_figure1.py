"""Figure 1: median approximation error vs. optimization time, two cost metrics.

Paper setting: chain/cycle/star join graphs, 10-100 tables, Steinbrunn
selectivities, 20 test cases, up to 3 s of optimization time, algorithms
DP(∞)/DP(1000)/DP(2)/SA/2P/NSGA-II/II/RMQ.  Expected shape: DP variants only
return results for the smallest queries; RMQ is competitive from ~25 tables
and dominates clearly for the largest queries; SA and 2P trail by orders of
magnitude.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure1_spec


def test_figure1(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure1_spec, scale)
    assert result.cells
    # Sanity series: the DP approximation scheme produces no result within the
    # budget for the largest query size of the grid (it does not scale),
    # except at the very smallest sizes of the smoke grid.
    largest = max(result.spec.table_counts)
    if largest >= 10:
        infinite_cells = sum(
            1
            for shape in result.spec.graph_shapes
            if result.cell(shape, largest, "DP(2)").final_error == float("inf")
        )
        assert infinite_cells >= 1
