"""Micro-benchmark M2: scalar vs. vectorized Pareto frontier insertion,
frontier-store comparison, and task-graph runner throughput.

Measures the throughput of inserting random cost vectors into a Pareto
frontier three ways:

* ``scalar``      — the pure-Python reference container
  (:class:`repro.pareto.reference.ScalarParetoFrontier`), i.e. the seed
  implementation,
* ``vectorized``  — per-item inserts through the engine-backed
  :class:`repro.pareto.frontier.ParetoFrontier` (adaptive scalar/NumPy
  dispatch),
* ``batch``       — one vectorized ``insert_all`` call (chunked batch kernel
  with exact sequential semantics).

Results are printed and written to ``BENCH_pareto.json`` in the repository
root.  The acceptance bar for the engine is ``batch`` ≥ 3× ``scalar`` on
1000 random 3-metric vectors.

The *store* section compares the frontier stores of
:mod:`repro.pareto.store` — flat scan vs. sorted blocks vs. ND-tree vs. the
``auto`` policy — on an anti-correlated tradeoff workload whose frontier
keeps growing (the regime the indexed tiers exist for), over 10³–10⁵
vectors and 2–5 metrics, writing ``BENCH_frontier.json``.  The headline
number is the sorted-store speedup over the flat store at 10⁵ vectors and
3 metrics; the target is ≥ 5×.

The runner section measures benchmark *task* throughput (leaf tasks per
second of a small step-driven scenario) through the task-graph pipeline —
sequential and process-pool at ``case`` granularity — verifies the two
modes agree bit-for-bit, and writes ``BENCH_runner.json``.

The *coordinator* section measures the same scenario through the dynamic
lease-based backend (``backend="coordinator"``, 1 and 2 workers) plus a
cold-vs-warm ``TaskCache`` run, verifies every mode agrees with the
sequential result bit-for-bit, and writes ``BENCH_coordinator.json``.

The *RMQ* section measures end-to-end RMQ iteration throughput on the
10-table / 3-metric micro workload (compressed α schedule, the figure
pipeline's configuration) under the ``object`` and ``arena`` plan engines,
asserts the two frontiers are bit-identical, and writes ``BENCH_rmq.json``.
The headline target is arena ≥ 5× object.

The *DP* section measures end-to-end DP(α) throughput on an 8-table chain
with 3 metrics and α = 2 — the full 3^8 subset-split lattice — under the
``object`` engine, the ``arena`` engine, and the arena engine's
coordinator backend over the shared-memory task fabric with 1, 2, and 4
workers, asserts all modes are bit-identical, and writes ``BENCH_dp.json``
(including per-worker-count ``parallel_efficiency``).  The headline
targets are arena ≥ 5× object and 4-worker coordinator ≥ 1.5× arena.

Run as a script (``python benchmarks/bench_micro_pareto.py``) or via pytest
(``pytest benchmarks/bench_micro_pareto.py``).
"""

from __future__ import annotations

import json
import os
import random
import timeit
from typing import Dict, List, Tuple

from repro.pareto.engine import ParetoSet
from repro.pareto.frontier import ParetoFrontier
from repro.pareto.reference import ScalarParetoFrontier

#: Repository root (this file lives in benchmarks/).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_pareto.json")
FRONTIER_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_frontier.json")
RUNNER_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_runner.json")
COORDINATOR_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_coordinator.json")
RMQ_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_rmq.json")
DP_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_dp.json")

NUM_VECTORS = 1000
NUM_METRICS = 3
REPEATS = 9
SEED = 20160626


def _random_vectors(
    count: int = NUM_VECTORS, metrics: int = NUM_METRICS, seed: int = SEED
) -> List[Tuple[float, ...]]:
    rng = random.Random(seed)
    return [
        tuple(rng.random() * 100.0 for _ in range(metrics)) for _ in range(count)
    ]


def _scalar_insert(vectors) -> list:
    frontier: ScalarParetoFrontier = ScalarParetoFrontier()
    for vector in vectors:
        frontier.insert(vector)
    return frontier.items()


def _vectorized_insert(vectors) -> list:
    frontier: ParetoFrontier = ParetoFrontier()
    for vector in vectors:
        frontier.insert(vector)
    return frontier.items()


def _batch_insert(vectors) -> list:
    frontier: ParetoFrontier = ParetoFrontier()
    frontier.insert_all(vectors)
    return frontier.items()


def run_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Measure the three insertion paths and return (and persist) the results."""
    vectors = _random_vectors()
    results = {
        "scalar": _scalar_insert(vectors),
        "vectorized": _vectorized_insert(vectors),
        "batch": _batch_insert(vectors),
    }
    assert results["scalar"] == results["vectorized"] == results["batch"], (
        "insertion paths disagree on the final frontier"
    )

    timings = {
        name: min(timeit.repeat(runner, number=1, repeat=REPEATS))
        for name, runner in (
            ("scalar", lambda: _scalar_insert(vectors)),
            ("vectorized", lambda: _vectorized_insert(vectors)),
            ("batch", lambda: _batch_insert(vectors)),
        )
    }
    report: Dict[str, object] = {
        "num_vectors": NUM_VECTORS,
        "num_metrics": NUM_METRICS,
        "seed": SEED,
        "frontier_size": len(results["scalar"]),
        "seconds": timings,
        "inserts_per_second": {
            name: NUM_VECTORS / seconds for name, seconds in timings.items()
        },
        "speedup_vs_scalar": {
            "vectorized": timings["scalar"] / timings["vectorized"],
            "batch": timings["scalar"] / timings["batch"],
        },
    }
    if write_json:
        with open(RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _format_report(report: Dict[str, object]) -> str:
    seconds = report["seconds"]
    speedups = report["speedup_vs_scalar"]
    lines = [
        f"Frontier insert micro-benchmark "
        f"({report['num_vectors']} random {report['num_metrics']}-metric vectors, "
        f"final frontier size {report['frontier_size']}):",
        f"  scalar     {seconds['scalar'] * 1e3:8.2f} ms",
        f"  vectorized {seconds['vectorized'] * 1e3:8.2f} ms "
        f"({speedups['vectorized']:.2f}x)",
        f"  batch      {seconds['batch'] * 1e3:8.2f} ms "
        f"({speedups['batch']:.2f}x)",
    ]
    return "\n".join(lines)


def test_batch_insert_beats_scalar():
    """The vectorized batch path must clearly beat the scalar reference.

    The headline number (≥ 3× on this machine class) is recorded in
    ``BENCH_pareto.json``; the assertion uses a lower bar so the check stays
    robust on loaded CI runners.
    """
    report = run_benchmark()
    print()
    print(_format_report(report))
    assert report["speedup_vs_scalar"]["batch"] > 1.5


# ---------------------------------------------------------------------------
# Frontier-store comparison (flat vs. sorted vs. ND-tree vs. auto)
# ---------------------------------------------------------------------------
#: Store-comparison grid: sizes × metric counts.  The full 10⁵ row is the
#: headline configuration (3 metrics, the paper's common case); the flat
#: store is quadratic in the frontier there, so it is measured once.
STORE_GRID = (
    (1_000, (2, 3, 5)),
    (10_000, (2, 3, 5)),
    (100_000, (3,)),
)
STORE_NAMES = ("flat", "sorted", "ndtree", "auto")
STORE_NOISE = 0.002
STORE_HEADLINE = (100_000, 3)
STORE_TARGET_SPEEDUP = 5.0


def _tradeoff_vectors(
    count: int, metrics: int, seed: int = SEED, noise: float = STORE_NOISE
) -> List[Tuple[float, ...]]:
    """Anti-correlated tradeoff curve with noise: a frontier that keeps growing.

    Points near the curve ``(t, 1-t, ..., 1-t)`` are mostly mutually
    incomparable, so the frontier grows with the input — the regime where
    flat scans degrade quadratically and the indexed stores' pruning windows
    pay off.  The noise term keeps a realistic share of dominated points so
    rejection and eviction paths are exercised too.
    """
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        t = rng.random()
        base = [t] + [1.0 - t] * (metrics - 1)
        rows.append(tuple(100.0 * b + noise * 100.0 * rng.random() for b in base))
    return rows


def _store_insert(vectors: List[Tuple[float, ...]], store: str) -> ParetoSet:
    frontier = ParetoSet(store=store)
    insert = frontier.insert
    for vector in vectors:
        insert(vector)
    return frontier


def run_store_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Compare per-item insert throughput across the frontier stores."""
    grid: List[Dict[str, object]] = []
    headline: Dict[str, object] = {}
    for count, metric_counts in STORE_GRID:
        for metrics in metric_counts:
            vectors = _tradeoff_vectors(count, metrics)
            repeats = 3 if count < 100_000 else 1
            # One loop both times the builds and checks contents (the build
            # is deterministic, so any repeat's frontier serves the check);
            # building separately for the assertion would double the
            # quadratic flat pass at the headline size.
            seconds: Dict[str, float] = {}
            contents: Dict[str, list] = {}
            for store in STORE_NAMES:
                best = float("inf")
                frontier = None
                for _ in range(repeats):
                    started = timeit.default_timer()
                    frontier = _store_insert(vectors, store)
                    best = min(best, timeit.default_timer() - started)
                seconds[store] = best
                contents[store] = frontier.costs()
            reference = contents["flat"]
            for store, kept in contents.items():
                assert kept == reference, (
                    f"store {store!r} diverged from flat on "
                    f"{count} vectors x {metrics} metrics"
                )
            entry: Dict[str, object] = {
                "num_vectors": count,
                "num_metrics": metrics,
                "frontier_size": len(reference),
                "seconds": seconds,
                "inserts_per_second": {
                    store: count / elapsed for store, elapsed in seconds.items()
                },
                "speedup_vs_flat": {
                    store: seconds["flat"] / elapsed
                    for store, elapsed in seconds.items()
                    if store != "flat"
                },
            }
            grid.append(entry)
            if (count, metrics) == STORE_HEADLINE:
                headline = {
                    "num_vectors": count,
                    "num_metrics": metrics,
                    "frontier_size": len(reference),
                    "speedup_sorted_vs_flat": seconds["flat"] / seconds["sorted"],
                    "target_speedup": STORE_TARGET_SPEEDUP,
                }
    report: Dict[str, object] = {
        "workload": (
            f"anti-correlated tradeoff curve, noise={STORE_NOISE}, seed={SEED}"
        ),
        "stores": list(STORE_NAMES),
        "grid": grid,
        "headline": headline,
    }
    if write_json:
        with open(FRONTIER_RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _format_store_report(report: Dict[str, object]) -> str:
    lines = [f"Frontier-store micro-benchmark ({report['workload']}):"]
    for entry in report["grid"]:
        seconds = entry["seconds"]
        speedups = entry["speedup_vs_flat"]
        lines.append(
            f"  {entry['num_vectors']:>7} vectors x {entry['num_metrics']} metrics "
            f"(frontier {entry['frontier_size']:>6}): "
            f"flat {seconds['flat'] * 1e3:9.1f} ms | "
            + " | ".join(
                f"{store} {seconds[store] * 1e3:9.1f} ms ({speedups[store]:.2f}x)"
                for store in ("sorted", "ndtree", "auto")
            )
        )
    headline = report["headline"]
    if headline:
        lines.append(
            f"  headline: sorted is {headline['speedup_sorted_vs_flat']:.2f}x flat "
            f"at {headline['num_vectors']} vectors / {headline['num_metrics']} "
            f"metrics (target {headline['target_speedup']:.0f}x)"
        )
    return "\n".join(lines)


def test_store_insert_speedup():
    """Indexed stores must clearly beat the flat store on large frontiers.

    The headline number (≥ 5× at 10⁵ vectors / 3 metrics on this machine
    class) is recorded in ``BENCH_frontier.json``; the assertion uses a
    lower bar so the check stays robust on loaded CI runners.  Frontier
    contents are asserted bit-identical across stores inside the benchmark.
    """
    report = run_store_benchmark()
    print()
    print(_format_store_report(report))
    headline = report["headline"]
    assert headline, "headline configuration missing from the store grid"
    assert headline["speedup_sorted_vs_flat"] > 2.5


# ---------------------------------------------------------------------------
# Runner throughput (task-graph pipeline)
# ---------------------------------------------------------------------------
def _runner_spec():
    from repro.bench.scenario import ScenarioScale, ScenarioSpec
    from repro.query.join_graph import GraphShape

    return ScenarioSpec(
        name="bench-runner",
        description="task throughput micro-scenario",
        graph_shapes=(GraphShape.CHAIN, GraphShape.STAR),
        table_counts=(6,),
        num_metrics=2,
        algorithms=("RandomSampling", "RMQ"),
        num_test_cases=3,
        step_checkpoints=(4, 8),
        seed=SEED,
        scale=ScenarioScale.SMOKE,
    )


def run_runner_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Measure leaf-task throughput through the task-graph pipeline.

    Sequential throughput is the headline (min over repeats); the
    process-pool number is recorded for reference — at this micro scale it
    is dominated by worker start-up, the pool only pays off on real grids.
    Both modes must produce bit-identical scenario results.
    """
    from repro.bench.runner import run_scenario
    from repro.bench.tasks import schedule_tasks

    spec = _runner_spec()
    num_tasks = len(schedule_tasks(spec))
    sequential = run_scenario(spec, workers=1)
    parallel = run_scenario(spec, workers=2, granularity="case")
    parallel_matches_sequential = parallel.cells == sequential.cells

    sequential_seconds = min(
        timeit.repeat(lambda: run_scenario(spec, workers=1), number=1, repeat=3)
    )
    parallel_seconds = min(
        timeit.repeat(
            lambda: run_scenario(spec, workers=2, granularity="case"),
            number=1,
            repeat=1,
        )
    )
    report: Dict[str, object] = {
        "num_tasks": num_tasks,
        "step_checkpoints": list(spec.step_checkpoints),
        "seed": SEED,
        "seconds": {
            "sequential": sequential_seconds,
            "case_parallel_2_workers": parallel_seconds,
        },
        "tasks_per_second": {
            "sequential": num_tasks / sequential_seconds,
            "case_parallel_2_workers": num_tasks / parallel_seconds,
        },
        "parallel_matches_sequential": parallel_matches_sequential,
    }
    if write_json:
        with open(RUNNER_RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _format_runner_report(report: Dict[str, object]) -> str:
    seconds = report["seconds"]
    rates = report["tasks_per_second"]
    return "\n".join(
        [
            f"Runner throughput micro-benchmark ({report['num_tasks']} leaf tasks, "
            f"step checkpoints {report['step_checkpoints']}):",
            f"  sequential       {seconds['sequential'] * 1e3:8.2f} ms "
            f"({rates['sequential']:.1f} tasks/s)",
            f"  2-worker (case)  {seconds['case_parallel_2_workers'] * 1e3:8.2f} ms "
            f"({rates['case_parallel_2_workers']:.1f} tasks/s)",
        ]
    )


def test_runner_throughput_recorded():
    """Task throughput is measured, parallel == sequential bit-for-bit."""
    report = run_runner_benchmark()
    print()
    print(_format_runner_report(report))
    assert report["parallel_matches_sequential"] is True
    assert report["tasks_per_second"]["sequential"] > 0


# ---------------------------------------------------------------------------
# Coordinator throughput (dynamic lease-based backend + task cache)
# ---------------------------------------------------------------------------
def run_coordinator_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Measure task throughput through the coordinator backend.

    Runs the runner micro-scenario through ``backend="coordinator"`` with
    1 and 2 workers, then cold-vs-warm through a ``TaskCache``.  All modes
    must match the sequential result bit-for-bit; the warm-cache run
    additionally leases zero tasks (every leaf is a cache hit).
    """
    import tempfile
    import timeit as _timeit

    from repro.bench.runner import run_scenario
    from repro.bench.tasks import clear_reference_memo, schedule_tasks
    from repro.dist import TaskCache

    spec = _runner_spec()
    num_tasks = len(schedule_tasks(spec))
    clear_reference_memo()
    sequential = run_scenario(spec, workers=1)
    seconds: Dict[str, float] = {}
    matches: Dict[str, bool] = {}
    seconds["sequential"] = min(
        _timeit.repeat(lambda: run_scenario(spec, workers=1), number=1, repeat=3)
    )
    for name, kwargs in (
        ("coordinator_1_worker", dict(backend="coordinator", workers=1)),
        ("coordinator_2_workers", dict(backend="coordinator", workers=2)),
    ):
        result = run_scenario(spec, **kwargs)
        matches[name] = result.cells == sequential.cells
        repeats = 3 if kwargs["workers"] == 1 else 1
        seconds[name] = min(
            _timeit.repeat(
                lambda: run_scenario(spec, **kwargs), number=1, repeat=repeats
            )
        )
    with tempfile.TemporaryDirectory() as tmp:
        cold_cache = TaskCache(os.path.join(tmp, "cache"))
        started = _timeit.default_timer()
        cold = run_scenario(spec, backend="coordinator", workers=1, cache=cold_cache)
        seconds["coordinator_cold_cache"] = _timeit.default_timer() - started
        matches["coordinator_cold_cache"] = cold.cells == sequential.cells
        warm_cache = TaskCache(os.path.join(tmp, "cache"))
        started = _timeit.default_timer()
        warm = run_scenario(spec, backend="coordinator", workers=1, cache=warm_cache)
        seconds["coordinator_warm_cache"] = _timeit.default_timer() - started
        matches["coordinator_warm_cache"] = warm.cells == sequential.cells
        warm_hits = warm_cache.stats["hits"]
    report: Dict[str, object] = {
        "num_tasks": num_tasks,
        "step_checkpoints": list(spec.step_checkpoints),
        "seed": SEED,
        "seconds": seconds,
        "tasks_per_second": {
            name: num_tasks / elapsed for name, elapsed in seconds.items()
        },
        # Coordinator throughput over the sequential runner, normalized by
        # worker count (> 1/workers means the backend pays for itself).
        "parallel_efficiency": {
            "1_worker": seconds["sequential"] / seconds["coordinator_1_worker"],
            "2_workers":
                seconds["sequential"] / seconds["coordinator_2_workers"] / 2,
        },
        "warm_cache_hits": warm_hits,
        "matches_sequential": matches,
    }
    if write_json:
        with open(COORDINATOR_RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _format_coordinator_report(report: Dict[str, object]) -> str:
    seconds = report["seconds"]
    rates = report["tasks_per_second"]
    lines = [
        f"Coordinator throughput micro-benchmark ({report['num_tasks']} leaf "
        f"tasks, step checkpoints {report['step_checkpoints']}):"
    ]
    for name in (
        "sequential",
        "coordinator_1_worker",
        "coordinator_2_workers",
        "coordinator_cold_cache",
        "coordinator_warm_cache",
    ):
        lines.append(
            f"  {name:<24} {seconds[name] * 1e3:8.2f} ms "
            f"({rates[name]:.1f} tasks/s)"
        )
    efficiency = report["parallel_efficiency"]
    lines.append(
        f"  parallel efficiency: 1 worker {efficiency['1_worker']:.2f}, "
        f"2 workers {efficiency['2_workers']:.2f}"
    )
    lines.append(
        f"  warm cache hits: {report['warm_cache_hits']}/{report['num_tasks']}"
    )
    return "\n".join(lines)


def test_coordinator_throughput_recorded():
    """Coordinator modes match sequential bit-for-bit; warm cache hits all."""
    report = run_coordinator_benchmark()
    print()
    print(_format_coordinator_report(report))
    assert all(report["matches_sequential"].values()), report["matches_sequential"]
    assert report["warm_cache_hits"] == report["num_tasks"]
    assert report["tasks_per_second"]["coordinator_1_worker"] > 0


# ---------------------------------------------------------------------------
# RMQ end-to-end throughput (object vs. arena plan engine)
# ---------------------------------------------------------------------------
#: The 10-table / 3-metric micro workload: one random chain query, RMQ with
#: the compressed α schedule (what the figure pipeline runs), 400 iterations.
RMQ_NUM_TABLES = 10
RMQ_NUM_METRICS = 3
RMQ_ITERATIONS = 400
RMQ_TARGET_SPEEDUP = 5.0


def _rmq_workload():
    from repro.cost.model import MultiObjectiveCostModel
    from repro.query.generator import QueryGenerator
    from repro.query.join_graph import GraphShape

    query = QueryGenerator(rng=random.Random(SEED)).generate(
        RMQ_NUM_TABLES, GraphShape.CHAIN
    )
    return MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))


def _run_rmq(model, engine: str):
    from repro.core.frontier import AlphaSchedule
    from repro.core.rmq import RMQOptimizer

    optimizer = RMQOptimizer(
        model,
        rng=random.Random(SEED + 1),
        engine=engine,
        schedule=AlphaSchedule.compressed(),
    )
    started = timeit.default_timer()
    optimizer.run(max_steps=RMQ_ITERATIONS)
    elapsed = timeit.default_timer() - started
    frontier = sorted(plan.cost for plan in optimizer.frontier())
    return elapsed, frontier, optimizer.statistics.plans_built


def run_rmq_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Measure end-to-end RMQ iteration throughput per plan engine.

    Both engines run the identical seeded workload; their frontiers (and
    work counters) must be bit-identical, which is asserted before the
    timing numbers are recorded.
    """
    model = _rmq_workload()
    seconds: Dict[str, float] = {}
    frontiers: Dict[str, list] = {}
    plans_built: Dict[str, int] = {}
    for engine in ("object", "arena"):
        seconds[engine], frontiers[engine], plans_built[engine] = _run_rmq(
            model, engine
        )
    assert frontiers["arena"] == frontiers["object"], (
        "plan engines disagree on the RMQ frontier"
    )
    assert plans_built["arena"] == plans_built["object"], (
        "plan engines disagree on the work counter"
    )
    report: Dict[str, object] = {
        "num_tables": RMQ_NUM_TABLES,
        "num_metrics": RMQ_NUM_METRICS,
        "iterations": RMQ_ITERATIONS,
        "schedule": "compressed",
        "seed": SEED,
        "frontier_size": len(frontiers["object"]),
        "plans_built": plans_built["object"],
        "seconds": seconds,
        "iterations_per_second": {
            engine: RMQ_ITERATIONS / elapsed for engine, elapsed in seconds.items()
        },
        "speedup_arena_vs_object": seconds["object"] / seconds["arena"],
        "target_speedup": RMQ_TARGET_SPEEDUP,
    }
    if write_json:
        with open(RMQ_RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _format_rmq_report(report: Dict[str, object]) -> str:
    rates = report["iterations_per_second"]
    return "\n".join(
        [
            f"RMQ end-to-end throughput micro-benchmark "
            f"({report['num_tables']} tables, {report['num_metrics']} metrics, "
            f"{report['iterations']} iterations, compressed schedule):",
            f"  object engine {rates['object']:8.2f} it/s",
            f"  arena engine  {rates['arena']:8.2f} it/s "
            f"({report['speedup_arena_vs_object']:.2f}x, "
            f"target {report['target_speedup']:.0f}x)",
            f"  frontier size {report['frontier_size']}, "
            f"plans built {report['plans_built']} (bit-identical engines)",
        ]
    )


def test_rmq_arena_speedup_recorded():
    """The arena engine must clearly beat the object engine on RMQ.

    The headline number (≥ 5× on this machine class) is recorded in
    ``BENCH_rmq.json``; the assertion uses a lower bar so the check stays
    robust on loaded CI runners.  Frontier bit-identity across engines is
    asserted inside the benchmark.
    """
    report = run_rmq_benchmark()
    print()
    print(_format_rmq_report(report))
    assert report["speedup_arena_vs_object"] > 2.5


# ---------------------------------------------------------------------------
# DP(α) end-to-end throughput (object vs. arena engine, + coordinator)
# ---------------------------------------------------------------------------
#: The DP micro workload: one random 8-table chain query, 3 metrics, α = 2
#: (a figure-grid configuration).  The full lattice is 3^8 split tasks and
#: ~1.1M candidate plans — large enough that per-candidate overheads, not
#: constant setup, dominate both engines.
DP_NUM_TABLES = 8
DP_NUM_METRICS = 3
DP_ALPHA = 2.0
DP_TARGET_SPEEDUP = 5.0
#: Shared-memory fabric acceptance bar: 4-worker coordinator throughput
#: relative to the sequential arena engine on the same workload.
DP_COORDINATOR_TARGET_SPEEDUP = 1.5


def _dp_workload():
    from repro.cost.model import MultiObjectiveCostModel
    from repro.query.generator import QueryGenerator
    from repro.query.join_graph import GraphShape

    query = QueryGenerator(rng=random.Random(SEED)).generate(
        DP_NUM_TABLES, GraphShape.CHAIN
    )
    return MultiObjectiveCostModel(query, metrics=("time", "buffer", "disk"))


def _run_dp(model, repeats: int = 1, **kwargs):
    from repro.baselines.dp import make_dp_optimizer

    best = float("inf")
    for _ in range(repeats):
        optimizer = make_dp_optimizer(
            model, alpha=DP_ALPHA, tasks_per_step=1000, **kwargs
        )
        started = timeit.default_timer()
        while not optimizer.finished:
            optimizer.step()
        best = min(best, timeit.default_timer() - started)
        frontier = sorted(plan.cost for plan in optimizer.frontier())
        built = optimizer.statistics.plans_built
    return best, frontier, built


def run_dp_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Measure end-to-end DP(α) throughput per plan engine.

    Runs the identical workload through the object engine, the arena
    engine, and the arena engine's 2-worker coordinator backend; all three
    frontiers and work counters must be bit-identical, which is asserted
    before the timing numbers are recorded.  The lattice is big enough that
    a single timed run per mode is stable.
    """
    model = _dp_workload()
    seconds: Dict[str, float] = {}
    frontiers: Dict[str, list] = {}
    plans_built: Dict[str, int] = {}
    coordinator_workers = (1, 2, 4)
    modes = [
        ("object", dict(engine="object")),
        ("arena", dict(engine="arena")),
    ] + [
        (f"arena_coordinator_{count}_workers",
         dict(engine="arena", backend="coordinator", workers=count))
        for count in coordinator_workers
    ]
    for name, kwargs in modes:
        # The object engine's single run is long enough to be stable; the
        # faster modes take the best of two so scheduler noise cannot
        # invert the recorded ratios.
        repeats = 1 if name == "object" else 2
        seconds[name], frontiers[name], plans_built[name] = _run_dp(
            model, repeats=repeats, **kwargs
        )
    for name, _ in modes[1:]:
        assert frontiers[name] == frontiers["object"], (
            f"DP mode {name!r} disagrees with the object engine on the frontier"
        )
        assert plans_built[name] == plans_built["object"], (
            f"DP mode {name!r} disagrees on the work counter"
        )
    rates = {
        name: plans_built["object"] / elapsed for name, elapsed in seconds.items()
    }
    report: Dict[str, object] = {
        "num_tables": DP_NUM_TABLES,
        "num_metrics": DP_NUM_METRICS,
        "alpha": DP_ALPHA,
        "seed": SEED,
        "frontier_size": len(frontiers["object"]),
        "plans_built": plans_built["object"],
        "seconds": seconds,
        "plans_per_second": rates,
        "speedup_arena_vs_object": seconds["object"] / seconds["arena"],
        "target_speedup": DP_TARGET_SPEEDUP,
        # Coordinator throughput relative to the sequential arena engine
        # (the fabric's acceptance bar is the 4-worker ratio), plus the
        # classic per-worker efficiency of the same ratio.  On a single
        # hardware thread the ratio above 1.0 is pipeline efficiency, not
        # parallelism — see ARCHITECTURE.md.
        "speedup_coordinator_vs_arena": {
            f"{count}_workers":
                rates[f"arena_coordinator_{count}_workers"] / rates["arena"]
            for count in coordinator_workers
        },
        "parallel_efficiency": {
            f"{count}_workers":
                rates[f"arena_coordinator_{count}_workers"]
                / rates["arena"] / count
            for count in coordinator_workers
        },
        "coordinator_target_speedup": DP_COORDINATOR_TARGET_SPEEDUP,
    }
    if write_json:
        with open(DP_RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _format_dp_report(report: Dict[str, object]) -> str:
    rates = report["plans_per_second"]
    lines = [
        f"DP end-to-end throughput micro-benchmark "
        f"({report['num_tables']}-table chain, {report['num_metrics']} "
        f"metrics, alpha={report['alpha']}, "
        f"{report['plans_built']} candidate plans):",
        f"  object engine          {rates['object']:12.0f} plans/s",
        f"  arena engine           {rates['arena']:12.0f} plans/s "
        f"({report['speedup_arena_vs_object']:.2f}x, "
        f"target {report['target_speedup']:.0f}x)",
    ]
    for key, speedup in report["speedup_coordinator_vs_arena"].items():
        count = key.split("_")[0]
        efficiency = report["parallel_efficiency"][key]
        lines.append(
            f"  arena + {count}-worker coord "
            f"{rates[f'arena_coordinator_{count}_workers']:12.0f} plans/s "
            f"({speedup:.2f}x arena, efficiency {efficiency:.2f})"
        )
    lines.append(
        f"  frontier size {report['frontier_size']} "
        f"(bit-identical across all modes)"
    )
    return "\n".join(lines)


def test_dp_arena_speedup_recorded():
    """The arena DP engine must clearly beat the object engine.

    The headline numbers — arena ≥ 5× object, 4-worker coordinator ≥ 1.5×
    sequential arena — are recorded in ``BENCH_dp.json``; the assertions
    use lower bars so the check stays robust on loaded CI runners.
    Frontier and work-counter bit-identity across engines and the
    coordinator backend is asserted inside the benchmark.
    """
    report = run_dp_benchmark()
    print()
    print(_format_dp_report(report))
    assert report["speedup_arena_vs_object"] > 2.5
    assert report["speedup_coordinator_vs_arena"]["4_workers"] > 1.0


def main() -> int:
    report = run_benchmark()
    print(_format_report(report))
    print(f"[results written to {RESULT_PATH}]")
    store_report = run_store_benchmark()
    print(_format_store_report(store_report))
    print(f"[results written to {FRONTIER_RESULT_PATH}]")
    runner_report = run_runner_benchmark()
    print(_format_runner_report(runner_report))
    print(f"[results written to {RUNNER_RESULT_PATH}]")
    coordinator_report = run_coordinator_benchmark()
    print(_format_coordinator_report(coordinator_report))
    print(f"[results written to {COORDINATOR_RESULT_PATH}]")
    rmq_report = run_rmq_benchmark()
    print(_format_rmq_report(rmq_report))
    print(f"[results written to {RMQ_RESULT_PATH}]")
    dp_report = run_dp_benchmark()
    print(_format_dp_report(dp_report))
    print(f"[results written to {DP_RESULT_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
