"""Micro-benchmark M2: scalar vs. vectorized Pareto frontier insertion.

Measures the throughput of inserting random cost vectors into a Pareto
frontier three ways:

* ``scalar``      — the pure-Python reference container
  (:class:`repro.pareto.reference.ScalarParetoFrontier`), i.e. the seed
  implementation,
* ``vectorized``  — per-item inserts through the engine-backed
  :class:`repro.pareto.frontier.ParetoFrontier` (adaptive scalar/NumPy
  dispatch),
* ``batch``       — one vectorized ``insert_all`` call (chunked batch kernel
  with exact sequential semantics).

Results are printed and written to ``BENCH_pareto.json`` in the repository
root.  The acceptance bar for the engine is ``batch`` ≥ 3× ``scalar`` on
1000 random 3-metric vectors.

Run as a script (``python benchmarks/bench_micro_pareto.py``) or via pytest
(``pytest benchmarks/bench_micro_pareto.py``).
"""

from __future__ import annotations

import json
import os
import random
import timeit
from typing import Dict, List, Tuple

from repro.pareto.frontier import ParetoFrontier
from repro.pareto.reference import ScalarParetoFrontier

#: Repository root (this file lives in benchmarks/).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_pareto.json")

NUM_VECTORS = 1000
NUM_METRICS = 3
REPEATS = 9
SEED = 20160626


def _random_vectors(
    count: int = NUM_VECTORS, metrics: int = NUM_METRICS, seed: int = SEED
) -> List[Tuple[float, ...]]:
    rng = random.Random(seed)
    return [
        tuple(rng.random() * 100.0 for _ in range(metrics)) for _ in range(count)
    ]


def _scalar_insert(vectors) -> list:
    frontier: ScalarParetoFrontier = ScalarParetoFrontier()
    for vector in vectors:
        frontier.insert(vector)
    return frontier.items()


def _vectorized_insert(vectors) -> list:
    frontier: ParetoFrontier = ParetoFrontier()
    for vector in vectors:
        frontier.insert(vector)
    return frontier.items()


def _batch_insert(vectors) -> list:
    frontier: ParetoFrontier = ParetoFrontier()
    frontier.insert_all(vectors)
    return frontier.items()


def run_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Measure the three insertion paths and return (and persist) the results."""
    vectors = _random_vectors()
    results = {
        "scalar": _scalar_insert(vectors),
        "vectorized": _vectorized_insert(vectors),
        "batch": _batch_insert(vectors),
    }
    assert results["scalar"] == results["vectorized"] == results["batch"], (
        "insertion paths disagree on the final frontier"
    )

    timings = {
        name: min(timeit.repeat(runner, number=1, repeat=REPEATS))
        for name, runner in (
            ("scalar", lambda: _scalar_insert(vectors)),
            ("vectorized", lambda: _vectorized_insert(vectors)),
            ("batch", lambda: _batch_insert(vectors)),
        )
    }
    report: Dict[str, object] = {
        "num_vectors": NUM_VECTORS,
        "num_metrics": NUM_METRICS,
        "seed": SEED,
        "frontier_size": len(results["scalar"]),
        "seconds": timings,
        "inserts_per_second": {
            name: NUM_VECTORS / seconds for name, seconds in timings.items()
        },
        "speedup_vs_scalar": {
            "vectorized": timings["scalar"] / timings["vectorized"],
            "batch": timings["scalar"] / timings["batch"],
        },
    }
    if write_json:
        with open(RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _format_report(report: Dict[str, object]) -> str:
    seconds = report["seconds"]
    speedups = report["speedup_vs_scalar"]
    lines = [
        f"Frontier insert micro-benchmark "
        f"({report['num_vectors']} random {report['num_metrics']}-metric vectors, "
        f"final frontier size {report['frontier_size']}):",
        f"  scalar     {seconds['scalar'] * 1e3:8.2f} ms",
        f"  vectorized {seconds['vectorized'] * 1e3:8.2f} ms "
        f"({speedups['vectorized']:.2f}x)",
        f"  batch      {seconds['batch'] * 1e3:8.2f} ms "
        f"({speedups['batch']:.2f}x)",
    ]
    return "\n".join(lines)


def test_batch_insert_beats_scalar():
    """The vectorized batch path must clearly beat the scalar reference.

    The headline number (≥ 3× on this machine class) is recorded in
    ``BENCH_pareto.json``; the assertion uses a lower bar so the check stays
    robust on loaded CI runners.
    """
    report = run_benchmark()
    print()
    print(_format_report(report))
    assert report["speedup_vs_scalar"]["batch"] > 1.5


def main() -> int:
    report = run_benchmark()
    print(_format_report(report))
    print(f"[results written to {RESULT_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
