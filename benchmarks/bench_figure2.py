"""Figure 2: median approximation error vs. optimization time, three cost metrics.

Same grid as Figure 1 with three cost metrics (time, buffer, disk).  The
paper reports that the gap between RMQ and the other randomized algorithms
widens with the number of cost metrics.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure2_spec


def test_figure2(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure2_spec, scale)
    assert result.cells
    assert result.spec.num_metrics == 3
