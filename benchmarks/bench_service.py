"""Service benchmark: the TCP lease service vs the file protocol.

Measures what "optimization as a service" buys over the shared-directory
protocol, on the same step-driven workload:

* ``lease_roundtrip`` — end-to-end job round-trip throughput (leases/s)
  at 4 workers.  The file protocol ties workers to one work directory,
  so every job pays worker bootstrap (process start + imports) plus
  directory polling; the service keeps a persistent pool attached over
  TCP, parked on server-side long-polls, so a new job starts executing
  within milliseconds.  Target: TCP >= ``SPEEDUP_TARGET`` x file.
* ``raw_transport`` — the same claim->complete cycle driven directly
  (precomputed results, hot loops, no bootstrap) for honest context:
  on a local page cache the raw wires are near parity; the win above is
  persistent attachment, not cheaper syscalls.
* ``saturation`` — jobs/s of a warm multi-tenant service as concurrent
  clients grow (1..MAX_CLIENTS); records where throughput saturates.
* ``dedup`` — cross-client dedup ratio: N tenants submitting the same
  figure concurrently lease zero duplicate deterministic leaves.
* ``bit_identical`` — a service run with an injected mid-lease
  disconnect *and* a worker death still reduces to cells bit-identical
  to sequential ``run_scenario``.

Results are written to ``BENCH_service.json`` in the repository root.
Run as a script (``python benchmarks/bench_service.py``) or via pytest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List

from repro.bench.runner import reduce_task_results, run_scenario
from repro.bench.scenario import ScenarioScale, ScenarioSpec
from repro.bench.tasks import _execute_task_group, schedule_tasks
from repro.dist.protocol import FileLeaseTransport, collect_results, init_workdir
from repro.dist.service import (
    RemoteLeaseTransport,
    ServiceClient,
    run_service_worker,
    start_service,
    submit_scenario,
)
from repro.obs.metrics import Metrics
from repro.query.join_graph import GraphShape

#: Repository root (this file lives in benchmarks/).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SERVICE_RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_service.json")

WORKERS = 4
ROUNDS = 3
MAX_CLIENTS = 12
CLIENT_SWEEP = (1, 2, 4, 8, MAX_CLIENTS)
JOBS_PER_CLIENT = 8
SEED = 11

#: Design target for the service's job round-trip advantage at 4 workers.
SPEEDUP_TARGET = 5.0
#: Hard CI bar — generous because worker bootstrap times vary across
#: machines; the recorded number is what matters for trend-watching.
SPEEDUP_HARD_FLOOR = 2.0


def _spec(seed: int = SEED) -> ScenarioSpec:
    """The step-driven smoke workload (12 deterministic leaves)."""
    return ScenarioSpec(
        name="bench-service",
        description="lease service benchmark workload",
        graph_shapes=(GraphShape.CHAIN, GraphShape.STAR),
        table_counts=(4,),
        num_metrics=2,
        algorithms=("RandomSampling", "RMQ"),
        num_test_cases=2,
        step_checkpoints=(2, 4),
        reference_algorithm="DP(1.01)",
        seed=seed,
        scale=ScenarioScale.SMOKE,
    )


# ---------------------------------------------------------------------------
# Job round-trip: per-job worker bootstrap (file) vs attached pool (TCP)
# ---------------------------------------------------------------------------
def _bench_file_pipeline() -> Dict[str, float]:
    """File-protocol job round-trip with real CLI worker processes.

    Each job is a fresh work directory, so workers cannot outlive it —
    this is the protocol's structural per-job cost, not a handicap.
    """
    env = dict(os.environ, PYTHONPATH=os.path.join(_REPO_ROOT, "src"))
    total_seconds = 0.0
    total_leases = 0
    for round_index in range(ROUNDS):
        spec = _spec(seed=700 + round_index)
        workdir = tempfile.mkdtemp(prefix="bench-service-file-")
        start = time.perf_counter()
        init_workdir(workdir, spec, workers_hint=WORKERS, granularity="case")
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.bench.cli", "work", "--dir", workdir],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for _ in range(WORKERS)
        ]
        collect_results(workdir, timeout=300.0)
        total_seconds += time.perf_counter() - start
        for proc in procs:
            proc.wait(timeout=60.0)
        total_leases += len(schedule_tasks(spec))
    return {
        "leases_per_second": total_leases / total_seconds,
        "ms_per_job": total_seconds / ROUNDS * 1000.0,
    }


def _bench_tcp_pipeline() -> Dict[str, float]:
    """Service job round-trip against an already-attached worker pool."""
    handle = start_service(port=0, metrics=Metrics())
    stop = threading.Event()
    pool = threading.Thread(
        target=run_service_worker,
        args=(handle.address,),
        kwargs=dict(workers=WORKERS, stop=stop, poll=0.02, poll_cap=0.2),
        daemon=True,
    )
    pool.start()
    try:
        # One throwaway job warms the pool's connections and code paths.
        submit_scenario(handle.address, _spec(seed=999), timeout=120.0)
        total_seconds = 0.0
        total_leases = 0
        for round_index in range(ROUNDS):
            spec = _spec(seed=800 + round_index)
            start = time.perf_counter()
            submit_scenario(
                handle.address, spec, granularity="case", timeout=120.0
            )
            total_seconds += time.perf_counter() - start
            total_leases += len(schedule_tasks(spec))
    finally:
        stop.set()
        pool.join(timeout=30.0)
        handle.stop()
    return {
        "leases_per_second": total_leases / total_seconds,
        "ms_per_job": total_seconds / ROUNDS * 1000.0,
    }


# ---------------------------------------------------------------------------
# Raw transport cycle (context): direct drive, precomputed results
# ---------------------------------------------------------------------------
def _bench_raw_transport() -> Dict[str, float]:
    spec = _spec(seed=500)
    tasks = schedule_tasks(spec)
    by_task = {task: _execute_task_group(spec, [task])[0] for task in tasks}

    workdir = tempfile.mkdtemp(prefix="bench-service-raw-")
    init_workdir(workdir, spec, granularity="case")

    def drive_file(worker_id: str) -> None:
        transport = FileLeaseTransport(
            workdir, worker_id=worker_id, metrics=Metrics()
        )
        while True:
            lease = transport.request_lease(worker_id)
            if lease is None:
                if transport.done:
                    return
                time.sleep(0.001)
                continue
            transport.complete_lease(
                lease.lease_id, [by_task[task] for task in lease.tasks]
            )

    start = time.perf_counter()
    threads = [
        threading.Thread(target=drive_file, args=(f"w{i}",))
        for i in range(WORKERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    file_cycle = len(tasks) / (time.perf_counter() - start)

    handle = start_service(port=0, metrics=Metrics())
    try:
        with ServiceClient(handle.address) as client:
            info = client.submit(spec, granularity="case", timeout=60.0)

            def drive_tcp(worker_id: str) -> None:
                transport = RemoteLeaseTransport(
                    handle.address, worker_id=worker_id
                )
                while True:
                    lease = transport.request_lease(worker_id)
                    if lease is None:
                        if transport.done:
                            transport.close()
                            return
                        transport.wait_for_work(0.05)
                        continue
                    transport.complete_lease(
                        lease.lease_id, [by_task[task] for task in lease.tasks]
                    )

            start = time.perf_counter()
            threads = [
                threading.Thread(target=drive_tcp, args=(f"t{i}",))
                for i in range(WORKERS)
            ]
            for thread in threads:
                thread.start()
            client.wait(info["job"], timeout=60.0)
            tcp_cycle = len(tasks) / (time.perf_counter() - start)
            for thread in threads:
                thread.join(timeout=10.0)
    finally:
        handle.stop()
    return {
        "file_cycles_per_second": file_cycle,
        "tcp_cycles_per_second": tcp_cycle,
    }


# ---------------------------------------------------------------------------
# Saturation: concurrent clients against a warm multi-tenant service
# ---------------------------------------------------------------------------
def _bench_saturation() -> Dict[str, object]:
    handle = start_service(port=0, metrics=Metrics(), max_jobs=256)
    stop = threading.Event()
    pool = threading.Thread(
        target=run_service_worker,
        args=(handle.address,),
        kwargs=dict(workers=WORKERS, stop=stop, poll=0.02, poll_cap=0.2),
        daemon=True,
    )
    pool.start()
    spec = _spec()
    try:
        # Cold run executes every leaf once; everything after is served
        # from the session memo — the sweep measures the service path
        # itself (admission, dedup router, result injection, transport).
        submit_scenario(handle.address, spec, timeout=120.0)
        sweep: List[Dict[str, float]] = []
        for clients in CLIENT_SWEEP:
            def tenant(name: str) -> None:
                with ServiceClient(handle.address, client_id=name) as client:
                    for _ in range(JOBS_PER_CLIENT):
                        client.run(spec, timeout=60.0)

            threads = [
                threading.Thread(target=tenant, args=(f"c{clients}-{i}",))
                for i in range(clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            sweep.append(
                {
                    "clients": clients,
                    "jobs_per_second": clients * JOBS_PER_CLIENT / elapsed,
                }
            )
    finally:
        stop.set()
        pool.join(timeout=30.0)
        handle.stop()
    best = max(sweep, key=lambda entry: entry["jobs_per_second"])
    return {
        "jobs_per_client": JOBS_PER_CLIENT,
        "sweep": sweep,
        "saturation_clients": best["clients"],
        "peak_jobs_per_second": best["jobs_per_second"],
    }


# ---------------------------------------------------------------------------
# Cross-client dedup ratio
# ---------------------------------------------------------------------------
def _bench_dedup() -> Dict[str, float]:
    handle = start_service(port=0, metrics=Metrics())
    stop = threading.Event()
    pool = threading.Thread(
        target=run_service_worker,
        args=(handle.address,),
        kwargs=dict(workers=WORKERS, stop=stop, poll=0.02, poll_cap=0.2),
        daemon=True,
    )
    pool.start()
    spec = _spec()
    tenants = 5
    infos: List[Dict[str, object]] = []
    try:
        def tenant(name: str) -> None:
            _, info = submit_scenario(
                handle.address, spec, timeout=120.0, client_id=name
            )
            infos.append(info)

        threads = [
            threading.Thread(target=tenant, args=(f"tenant-{i}",))
            for i in range(tenants)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        stop.set()
        pool.join(timeout=30.0)
        handle.stop()
    total = len(schedule_tasks(spec))
    scheduled = sum(int(info["scheduled"]) for info in infos)
    requested = tenants * total
    return {
        "tenants": tenants,
        "leaves_per_job": total,
        "leaves_requested": requested,
        "leaves_executed": scheduled,
        "duplicate_leases": scheduled - total,
        "dedup_ratio": 1.0 - scheduled / requested,
    }


# ---------------------------------------------------------------------------
# Bit-identity under injected faults
# ---------------------------------------------------------------------------
def _bench_bit_identity() -> bool:
    spec = _spec()
    sequential = run_scenario(spec, workers=1)
    handle = start_service(port=0, metrics=Metrics(), lease_timeout=30.0)
    died = threading.Event()

    def die_once(lease) -> None:
        if not died.is_set():
            died.set()
            raise RuntimeError("injected worker death")

    try:
        with ServiceClient(handle.address) as client:
            info = client.submit(spec, timeout=60.0)
            # Fault one: a worker claims a lease, then its connection
            # drops mid-lease (abrupt close, no fail message).
            rogue = RemoteLeaseTransport(handle.address, worker_id="rogue")
            assert rogue.request_lease("rogue") is not None
            rogue.close()
            # Fault two: a pool worker dies between claim and result.
            stop = threading.Event()
            pool = threading.Thread(
                target=run_service_worker,
                args=(handle.address,),
                kwargs=dict(
                    workers=2, stop=stop, poll=0.02, poll_cap=0.2,
                    on_lease=die_once,
                ),
                daemon=True,
            )
            pool.start()
            try:
                results, _ = client.wait(info["job"], timeout=120.0)
            finally:
                stop.set()
                pool.join(timeout=30.0)
    finally:
        handle.stop()
    return reduce_task_results(spec, results) == sequential.cells


def run_benchmark(write_json: bool = True) -> Dict[str, object]:
    """Run every section; return (and persist) the combined results."""
    file_pipeline = _bench_file_pipeline()
    tcp_pipeline = _bench_tcp_pipeline()
    speedup = (
        tcp_pipeline["leases_per_second"] / file_pipeline["leases_per_second"]
    )
    results: Dict[str, object] = {
        "workers": WORKERS,
        "rounds": ROUNDS,
        "lease_roundtrip": {
            "file": file_pipeline,
            "tcp": tcp_pipeline,
            "speedup": speedup,
            "speedup_target": SPEEDUP_TARGET,
            "speedup_hard_floor": SPEEDUP_HARD_FLOOR,
        },
        "raw_transport": _bench_raw_transport(),
        "saturation": _bench_saturation(),
        "dedup": _bench_dedup(),
        "bit_identical": _bench_bit_identity(),
    }
    if write_json:
        with open(SERVICE_RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return results


def test_service_benchmark() -> None:
    """Pytest entry point: enforce the acceptance bars."""
    results = run_benchmark()
    roundtrip = results["lease_roundtrip"]
    assert roundtrip["speedup"] >= SPEEDUP_HARD_FLOOR, results
    assert results["dedup"]["duplicate_leases"] == 0, results
    assert results["dedup"]["dedup_ratio"] >= 0.5, results
    assert results["bit_identical"] is True, results
    clients = [entry["clients"] for entry in results["saturation"]["sweep"]]
    assert max(clients) >= 8, results


def main() -> None:
    results = run_benchmark()
    roundtrip = results["lease_roundtrip"]
    print(
        f"file job round-trip {roundtrip['file']['ms_per_job']:8.0f} ms/job "
        f"({roundtrip['file']['leases_per_second']:.1f} leases/s)"
    )
    print(
        f"tcp  job round-trip {roundtrip['tcp']['ms_per_job']:8.0f} ms/job "
        f"({roundtrip['tcp']['leases_per_second']:.1f} leases/s)"
    )
    print(
        f"speedup             {roundtrip['speedup']:8.2f}x "
        f"(target {SPEEDUP_TARGET:.0f}x)"
    )
    raw = results["raw_transport"]
    print(
        f"raw cycle           file {raw['file_cycles_per_second']:.0f}/s, "
        f"tcp {raw['tcp_cycles_per_second']:.0f}/s"
    )
    for entry in results["saturation"]["sweep"]:
        print(
            f"saturation          {entry['clients']:3d} client(s): "
            f"{entry['jobs_per_second']:8.1f} jobs/s"
        )
    dedup = results["dedup"]
    print(
        f"dedup               {dedup['tenants']} tenants, "
        f"{dedup['duplicate_leases']} duplicate lease(s), "
        f"ratio {dedup['dedup_ratio']:.2f}"
    )
    print(f"bit identical       {results['bit_identical']}")
    print(f"results written to {SERVICE_RESULT_PATH}")


if __name__ == "__main__":
    main()
