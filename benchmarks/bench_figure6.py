"""Figure 6: long-budget comparison, two cost metrics, error capped at 1e10.

Paper setting: 50- and 100-table queries, 30 s of optimization time; the DP
variants never return a result and SA/2P exceed the 1e10 error cap, so the
plot effectively compares RMQ, II and NSGA-II.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure6_spec


def test_figure6(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure6_spec, scale)
    assert result.spec.error_cap == 1e10
    for cell in result.cells:
        assert all(error <= 1e10 for error in cell.median_errors)
