"""Figure 9: precise approximation error on small queries, three cost metrics.

Same as Figure 8 with three cost metrics.  In the paper RMQ is the only
randomized algorithm achieving a perfect approximation for eight-table
queries with three metrics.
"""

from conftest import run_figure_benchmark
from repro.bench.figures import figure9_spec


def test_figure9(benchmark, scale):
    result = run_figure_benchmark(benchmark, figure9_spec, scale)
    assert result.spec.num_metrics == 3
    assert result.spec.reference_algorithm == "DP(1.01)"
    assert result.cells
